// Vectorized structure-of-arrays BP sweep kernel (TRENDSPEED_SIMD=ON).
//
// Math contract vs the scalar oracle in belief_propagation.cc: identical
// update rule (damped sum-product, same z <= 0 guard, same damping blend,
// same plane-0 residual), different arithmetic:
//
//   * single precision throughout, with per-variable potential
//     normalization (scale-invariant: messages and beliefs are normalized
//     per edge / per variable, so scaling a variable's potential pair
//     cancels);
//   * only the plane-0 message component is stored (messages are
//     normalized per edge, so msg1 == 1 - msg0 by construction; the seed
//     blob is renormalized on ingest) — the plane-1 factors are
//     reconstructed as (1 - m) where needed;
//   * three compat planes per edge instead of four (cA, cB, cC — see
//     bp_kernel.h): the contraction is out0 = cav0*cA + cav1*cB with
//     normalizer z = cav0 + cav1*cC, an exact per-edge reparameterization
//     of the 2x2 table that cancels in the normalization;
//   * cavity beliefs via prefix/suffix running products instead of the
//     scalar divide-and-fall-back — no division, no underflow branch, and
//     a masked power-of-two rescale (exact in binary FP) keeps the running
//     products out of the subnormal range on deep products;
//   * FMA contraction and lane-max residual reduction, with two same-degree
//     batches interleaved per inner loop so the four running-product chains
//     hide each other's multiply latency.
//
// The first three are also the bandwidth story: at 100k+ variables the
// sweep streams its planes from L3/DRAM, and dropping one message plane and
// one compat plane is worth more than any extra ALU width — see the
// roofline section of docs/performance.md.
//
// Products reassociate and round differently, so marginals agree with the
// scalar kernel within a small multiple of tol, not bitwise — the contract
// BpOptions::kernel documents and tests/bp_kernel_test.cc pins.
//
// ISA safety: every function that touches F32x8 carries TS_SIMD_TARGET
// (see util/simd.h); this TU is compiled WITHOUT -mavx2 so all remaining
// code is baseline-ISA, and the kernel only runs behind the
// BpSimdKernelAvailable() runtime check.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "trend/bp_kernel.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace trendspeed {

namespace {

using simd::F32x8;

/// Mirrors kMinParallelVars in belief_propagation.cc: below this variable
/// count pool handoff costs more than the sweep.
constexpr size_t kMinParallelVars = 4096;

/// Running prefix/suffix products are rescaled (both planes, same lanes)
/// when max(plane0, plane1) of any lane drops below 2^-60; the 2^64 factor
/// is a power of two, so the rescale is exact and cancels in the per-edge
/// normalization. Rescaled lanes land in (2^-60, 16], so repeated rescales
/// cannot overflow lanes that did not ask for one.
constexpr float kRescaleLo = 0x1p-60f;
constexpr float kRescaleUp = 0x1p+64f;

TS_SIMD_INLINE F32x8 MaskAnd(F32x8 a, F32x8 b) {
  // Blend(a, b, 0-bits): a-set lanes take b's full mask, the rest all-zero.
  return simd::Blend(a, b, simd::Zero());
}

/// ok-lane mask for a normalizer: z > 0 and finite (z < FLT_MAX rejects
/// +inf and, via the ordered compare, NaN) — the scalar guard, lanewise.
TS_SIMD_INLINE F32x8 NormOkMask(F32x8 z) {
  return MaskAnd(
      simd::CmpGt(z, simd::Zero()),
      simd::CmpGt(simd::Broadcast(std::numeric_limits<float>::max()), z));
}

TS_SIMD_INLINE void MaybeRescale(F32x8& a, F32x8& b) {
  F32x8 m = simd::Max(a, b);
  if (simd::AnyLt(m, kRescaleLo)) {
    F32x8 need = simd::CmpGt(simd::Broadcast(kRescaleLo), m);
    F32x8 f = simd::Blend(need, simd::Broadcast(kRescaleUp),
                          simd::Broadcast(1.0f));
    a = simd::Mul(a, f);
    b = simd::Mul(b, f);
  }
}

/// Slot base + lane variables of one lockstep batch.
struct BatchCtx {
  size_t base;
  const uint32_t* vars;
};

/// One Jacobi half-sweep over TWO same-degree batches, interleaved
/// instruction-by-instruction. The running prefix/suffix products are
/// serial multiply chains (each step needs the previous one), so a single
/// batch leaves the FMA pipes mostly idle; two batches give four
/// independent chains, which is enough to hide the multiply latency.
/// Each batch's arithmetic only reads its own data, so the per-batch
/// results are bitwise identical to processing the batches one at a time —
/// pairing is a pure ILP transform and chunk boundaries cannot change it.
TS_SIMD_TARGET F32x8 SweepBatchPair(const BpGraphSoa& soa, BatchCtx a,
                                    BatchCtx b, uint32_t deg,
                                    const float* pot0, const float* pot1,
                                    const float* msg0, float* nxt0, F32x8 vd,
                                    F32x8 vomd, F32x8 vmax) {
  const F32x8 one = simd::Broadcast(1.0f);
  const F32x8 half = simd::Broadcast(0.5f);
  F32x8 in0a[BpGraphSoa::kMaxBatchDegree],
      pre0a[BpGraphSoa::kMaxBatchDegree], pre1a[BpGraphSoa::kMaxBatchDegree];
  F32x8 in0b[BpGraphSoa::kMaxBatchDegree],
      pre0b[BpGraphSoa::kMaxBatchDegree], pre1b[BpGraphSoa::kMaxBatchDegree];
  F32x8 p0a = simd::Gather(pot0, a.vars), p1a = simd::Gather(pot1, a.vars);
  F32x8 p0b = simd::Gather(pot0, b.vars), p1b = simd::Gather(pot1, b.vars);
  for (uint32_t k = 0; k < deg; ++k) {
    F32x8 ia = simd::Gather(msg0, &soa.rev[a.base + k * BpGraphSoa::kLanes]);
    F32x8 ib = simd::Gather(msg0, &soa.rev[b.base + k * BpGraphSoa::kLanes]);
    in0a[k] = ia;
    in0b[k] = ib;
    pre0a[k] = p0a;
    pre1a[k] = p1a;
    pre0b[k] = p0b;
    pre1b[k] = p1b;
    p0a = simd::Mul(p0a, ia);
    p1a = simd::Mul(p1a, simd::Sub(one, ia));
    p0b = simd::Mul(p0b, ib);
    p1b = simd::Mul(p1b, simd::Sub(one, ib));
    MaybeRescale(p0a, p1a);
    MaybeRescale(p0b, p1b);
  }
  F32x8 s0a = one, s1a = one, s0b = one, s1b = one;
  for (uint32_t k = deg; k-- > 0;) {
    // Cavity = prefix (everything before k) x suffix (everything after).
    // Prefix and suffix carry rescale factors, but within one k both
    // planes carry the same one, so the per-edge normalization below
    // cancels it.
    size_t ska = a.base + k * BpGraphSoa::kLanes;
    size_t skb = b.base + k * BpGraphSoa::kLanes;
    F32x8 c0a = simd::Mul(pre0a[k], s0a);
    F32x8 c1a = simd::Mul(pre1a[k], s1a);
    F32x8 c0b = simd::Mul(pre0b[k], s0b);
    F32x8 c1b = simd::Mul(pre1b[k], s1b);
    F32x8 o0a = simd::Fma(c0a, simd::Load(&soa.cA[ska]),
                          simd::Mul(c1a, simd::Load(&soa.cB[ska])));
    F32x8 za = simd::Fma(c1a, simd::Load(&soa.cC[ska]), c0a);
    F32x8 o0b = simd::Fma(c0b, simd::Load(&soa.cA[skb]),
                          simd::Mul(c1b, simd::Load(&soa.cB[skb])));
    F32x8 zb = simd::Fma(c1b, simd::Load(&soa.cC[skb]), c0b);
    F32x8 oka = NormOkMask(za), okb = NormOkMask(zb);
    F32x8 r0a = simd::Blend(oka, simd::Div(o0a, za), half);
    F32x8 r0b = simd::Blend(okb, simd::Div(o0b, zb), half);
    F32x8 olda = simd::Load(&msg0[ska]), oldb = simd::Load(&msg0[skb]);
    F32x8 newa = simd::Fma(vd, olda, simd::Mul(vomd, r0a));
    F32x8 newb = simd::Fma(vd, oldb, simd::Mul(vomd, r0b));
    simd::Store(&nxt0[ska], newa);
    simd::Store(&nxt0[skb], newb);
    vmax = simd::Max(vmax, simd::Abs(simd::Sub(newa, olda)));
    vmax = simd::Max(vmax, simd::Abs(simd::Sub(newb, oldb)));
    F32x8 ia = in0a[k], ib = in0b[k];
    s0a = simd::Mul(s0a, ia);
    s1a = simd::Mul(s1a, simd::Sub(one, ia));
    s0b = simd::Mul(s0b, ib);
    s1b = simd::Mul(s1b, simd::Sub(one, ib));
    MaybeRescale(s0a, s1a);
    MaybeRescale(s0b, s1b);
  }
  return vmax;
}

/// Single-batch variant for the odd batch at the end of a degree run or
/// chunk. Same arithmetic as one half of SweepBatchPair.
TS_SIMD_TARGET F32x8 SweepBatchOne(const BpGraphSoa& soa, BatchCtx a,
                                   uint32_t deg, const float* pot0,
                                   const float* pot1, const float* msg0,
                                   float* nxt0, F32x8 vd, F32x8 vomd,
                                   F32x8 vmax) {
  const F32x8 one = simd::Broadcast(1.0f);
  const F32x8 half = simd::Broadcast(0.5f);
  F32x8 in0s[BpGraphSoa::kMaxBatchDegree], pre0s[BpGraphSoa::kMaxBatchDegree],
      pre1s[BpGraphSoa::kMaxBatchDegree];
  F32x8 p0 = simd::Gather(pot0, a.vars), p1 = simd::Gather(pot1, a.vars);
  for (uint32_t k = 0; k < deg; ++k) {
    F32x8 i0 = simd::Gather(msg0, &soa.rev[a.base + k * BpGraphSoa::kLanes]);
    in0s[k] = i0;
    pre0s[k] = p0;
    pre1s[k] = p1;
    p0 = simd::Mul(p0, i0);
    p1 = simd::Mul(p1, simd::Sub(one, i0));
    MaybeRescale(p0, p1);
  }
  F32x8 s0 = one, s1 = one;
  for (uint32_t k = deg; k-- > 0;) {
    size_t sk = a.base + k * BpGraphSoa::kLanes;
    F32x8 c0 = simd::Mul(pre0s[k], s0);
    F32x8 c1 = simd::Mul(pre1s[k], s1);
    F32x8 o0 = simd::Fma(c0, simd::Load(&soa.cA[sk]),
                         simd::Mul(c1, simd::Load(&soa.cB[sk])));
    F32x8 z = simd::Fma(c1, simd::Load(&soa.cC[sk]), c0);
    F32x8 r0 = simd::Blend(NormOkMask(z), simd::Div(o0, z), half);
    F32x8 old0 = simd::Load(&msg0[sk]);
    F32x8 new0 = simd::Fma(vd, old0, simd::Mul(vomd, r0));
    simd::Store(&nxt0[sk], new0);
    vmax = simd::Max(vmax, simd::Abs(simd::Sub(new0, old0)));
    F32x8 i0 = in0s[k];
    s0 = simd::Mul(s0, i0);
    s1 = simd::Mul(s1, simd::Sub(one, i0));
    MaybeRescale(s0, s1);
  }
  return vmax;
}

/// One Jacobi half-sweep over the lockstep batches [b0, b1): reads msg0,
/// writes nxt0 (slots of these batches only — disjoint across chunks),
/// returns the local plane-0 residual max. Consecutive same-degree batches
/// are paired for ILP (see SweepBatchPair — per-batch results do not
/// depend on the pairing, so any chunking stays bitwise deterministic).
TS_SIMD_TARGET float SweepBatchRange(const BpGraphSoa& soa, size_t b0,
                                     size_t b1, const float* pot0,
                                     const float* pot1, const float* msg0,
                                     float* nxt0, float damp, float omd) {
  const F32x8 vd = simd::Broadcast(damp);
  const F32x8 vomd = simd::Broadcast(omd);
  F32x8 vmax = simd::Zero();
  auto ctx = [&](size_t b) {
    return BatchCtx{soa.batches[b].slot_base,
                    &soa.batch_var[b * BpGraphSoa::kLanes]};
  };
  size_t b = b0;
  while (b < b1) {
    uint32_t deg = soa.batches[b].deg;
    if (b + 1 < b1 && soa.batches[b + 1].deg == deg) {
      vmax = SweepBatchPair(soa, ctx(b), ctx(b + 1), deg, pot0, pot1, msg0,
                            nxt0, vd, vomd, vmax);
      b += 2;
    } else {
      vmax = SweepBatchOne(soa, ctx(b), deg, pot0, pot1, msg0, nxt0, vd,
                           vomd, vmax);
      b += 1;
    }
  }
  return simd::HorizontalMax(vmax);
}

/// Scalar single-precision mirror of the batch sweep for the spill list
/// (bucket remainders, hubs above kMaxBatchDegree, ill-conditioned compat).
/// Same prefix/suffix cavity math, one variable at a time, against the raw
/// 4-entry compat tables (spill_c*, indexed slot - spill_slot_base) since
/// the 3-plane form's conditioning precondition does not hold here.
float SweepSpill(const BpGraphSoa& soa, const float* pot0, const float* pot1,
                 const float* msg0, float* nxt0, float damp, float omd,
                 std::vector<float>& s_in0, std::vector<float>& s_pre0,
                 std::vector<float>& s_pre1) {
  float local_max = 0.0f;
  for (const BpGraphSoa::SpillVar& sv : soa.spill) {
    if (sv.deg == 0) continue;
    float pre0 = pot0[sv.var];
    float pre1 = pot1[sv.var];
    for (uint32_t k = 0; k < sv.deg; ++k) {
      uint32_t rs = soa.rev[sv.slot0 + k];
      s_in0[k] = msg0[rs];
      s_pre0[k] = pre0;
      s_pre1[k] = pre1;
      pre0 *= s_in0[k];
      pre1 *= 1.0f - s_in0[k];
      if (std::max(pre0, pre1) < kRescaleLo) {
        pre0 *= kRescaleUp;
        pre1 *= kRescaleUp;
      }
    }
    float suf0 = 1.0f, suf1 = 1.0f;
    for (uint32_t k = sv.deg; k-- > 0;) {
      float cav0 = s_pre0[k] * suf0;
      float cav1 = s_pre1[k] * suf1;
      size_t slot = sv.slot0 + k;
      size_t ci = slot - soa.spill_slot_base;
      float out0 = cav0 * soa.spill_c00[ci] + cav1 * soa.spill_c10[ci];
      float out1 = cav0 * soa.spill_c01[ci] + cav1 * soa.spill_c11[ci];
      float z = out0 + out1;
      float r0 = (z > 0.0f && z < std::numeric_limits<float>::max())
                     ? out0 / z
                     : 0.5f;
      float old0 = msg0[slot];
      float new0 = damp * old0 + omd * r0;
      nxt0[slot] = new0;
      float delta = std::fabs(new0 - old0);
      if (delta > local_max) local_max = delta;
      suf0 *= s_in0[k];
      suf1 *= 1.0f - s_in0[k];
      if (std::max(suf0, suf1) < kRescaleLo) {
        suf0 *= kRescaleUp;
        suf1 *= kRescaleUp;
      }
    }
  }
  return local_max;
}

TS_SIMD_TARGET void BeliefsBatchRange(const BpGraphSoa& soa, size_t b0,
                                      size_t b1, const float* pot0,
                                      const float* pot1, const float* msg0,
                                      double* p_up) {
  const F32x8 one = simd::Broadcast(1.0f);
  const F32x8 half = simd::Broadcast(0.5f);
  for (size_t b = b0; b < b1; ++b) {
    uint32_t deg = soa.batches[b].deg;
    size_t base = soa.batches[b].slot_base;
    const uint32_t* vars = &soa.batch_var[b * BpGraphSoa::kLanes];
    F32x8 bel0 = simd::Gather(pot0, vars);
    F32x8 bel1 = simd::Gather(pot1, vars);
    for (uint32_t k = 0; k < deg; ++k) {
      F32x8 i0 = simd::Gather(msg0, &soa.rev[base + k * BpGraphSoa::kLanes]);
      bel0 = simd::Mul(bel0, i0);
      bel1 = simd::Mul(bel1, simd::Sub(one, i0));
      MaybeRescale(bel0, bel1);
    }
    F32x8 z = simd::Add(bel0, bel1);
    F32x8 p = simd::Blend(NormOkMask(z), simd::Div(bel1, z), half);
    alignas(64) float lanes[BpGraphSoa::kLanes];
    simd::Store(lanes, p);
    for (uint32_t lane = 0; lane < BpGraphSoa::kLanes; ++lane) {
      p_up[vars[lane]] = static_cast<double>(lanes[lane]);
    }
  }
}

void BeliefsSpill(const BpGraphSoa& soa, const float* pot0, const float* pot1,
                  const float* msg0, double* p_up) {
  for (const BpGraphSoa::SpillVar& sv : soa.spill) {
    float b0 = pot0[sv.var];
    float b1 = pot1[sv.var];
    for (uint32_t k = 0; k < sv.deg; ++k) {
      float in0 = msg0[soa.rev[sv.slot0 + k]];
      b0 *= in0;
      b1 *= 1.0f - in0;
      if (std::max(b0, b1) < kRescaleLo) {
        b0 *= kRescaleUp;
        b1 *= kRescaleUp;
      }
    }
    float z = b0 + b1;
    p_up[sv.var] =
        (z > 0.0f && z < std::numeric_limits<float>::max())
            ? static_cast<double>(b1 / z)
            : 0.5;
  }
}

}  // namespace

const char* BpSimdArchName() { return simd::kArchName; }

void RunBpSweepsSimd(const BpSimdRun& run) {
  TS_CHECK(run.soa != nullptr);
  TS_CHECK(run.opts != nullptr);
  TS_CHECK(run.result != nullptr);
  TS_CHECK(BpSimdKernelAvailable());
  const BpGraphSoa& soa = *run.soa;
  const BpOptions& opts = *run.opts;
  const size_t n = soa.num_vars;
  TS_CHECK(run.pot != nullptr || n == 0);  // empty pot vectors may be null
  const size_t slots = soa.num_slots;

  BpResult& result = *run.result;
  result.p_up.assign(n, 0.5);
  if (n == 0) {
    if (run.final_msg != nullptr) run.final_msg->clear();
    return;
  }

  // Per-variable potential planes, normalized by the pair max in double
  // before the float cast. Scale-invariant (see file comment); hard 0/1
  // evidence pairs stay exactly hard, and all-zero pairs stay zero so the
  // z <= 0 guard fires exactly like the scalar path.
  AlignedVector<float> pot0(n), pot1(n);
  for (size_t v = 0; v < n; ++v) {
    double p0 = run.pot[2 * v];
    double p1 = run.pot[2 * v + 1];
    double m = std::max(p0, p1);
    if (m > 0.0 && std::isfinite(m)) {
      p0 /= m;
      p1 /= m;
    }
    pot0[v] = static_cast<float>(p0);
    pot1[v] = static_cast<float>(p1);
  }

  // Plane-0 message array in SoA order, seeded from the interchange-format
  // blob (BpGraph slot order, interleaved doubles) or the cold 0.5
  // constant. The scalar path emits per-edge-normalized pairs, but the
  // seed is renormalized in double anyway so msg1 == 1 - msg0 holds
  // exactly even for blobs that only sum to 1 up to rounding.
  AlignedVector<float> msg0(slots), nxt0(slots);
  if (run.seed_msg != nullptr) {
    for (size_t s = 0; s < slots; ++s) {
      size_t orig = soa.orig_slot[s];
      double m0 = run.seed_msg[2 * orig];
      double m1 = run.seed_msg[2 * orig + 1];
      double z = m0 + m1;
      msg0[s] = (z > 0.0 && std::isfinite(z))
                    ? static_cast<float>(m0 / z)
                    : 0.5f;
    }
  } else {
    std::fill(msg0.begin(), msg0.end(), 0.5f);
  }

  const float damp = static_cast<float>(opts.damping);
  const float omd = static_cast<float>(1.0 - opts.damping);

  // Work units: one per lockstep batch plus one for the whole spill list
  // (at most kLanes-1 variables per degree bucket plus the rare hubs —
  // negligible next to the batches).
  const size_t num_batches = soa.batches.size();
  const size_t units = num_batches + (soa.spill.empty() ? 0 : 1);
  size_t threads = std::min<size_t>(EffectiveThreads(opts.num_threads),
                                    std::max<size_t>(units, 1));
  const bool parallel = threads > 1 && n >= kMinParallelVars;

  size_t max_spill_deg = 0;
  for (const BpGraphSoa::SpillVar& sv : soa.spill) {
    max_spill_deg = std::max<size_t>(max_spill_deg, sv.deg);
  }
  std::vector<float> sp_in0(max_spill_deg);
  std::vector<float> sp_pre0(max_spill_deg), sp_pre1(max_spill_deg);

  // Processes work units [begin, end); returns the local residual max.
  // Every unit computes identically regardless of which chunk runs it and
  // the reduction is a max, so — like the scalar cold path — marginals are
  // bitwise deterministic for any thread count.
  auto run_units = [&](size_t begin, size_t end, std::vector<float>& t_in0,
                       std::vector<float>& t_pre0,
                       std::vector<float>& t_pre1) -> float {
    float local = 0.0f;
    size_t batch_end = std::min(end, num_batches);
    if (begin < batch_end) {
      local = SweepBatchRange(soa, begin, batch_end, pot0.data(), pot1.data(),
                              msg0.data(), nxt0.data(), damp, omd);
    }
    if (end > num_batches) {
      local = std::max(
          local, SweepSpill(soa, pot0.data(), pot1.data(), msg0.data(),
                            nxt0.data(), damp, omd, t_in0, t_pre0, t_pre1));
    }
    return local;
  };

  double max_delta = 0.0;
  for (uint32_t iter = 0; iter < opts.max_iters; ++iter) {
    if (!parallel) {
      max_delta =
          static_cast<double>(run_units(0, units, sp_in0, sp_pre0, sp_pre1));
    } else {
      std::vector<float> chunk_max(threads, 0.0f);
      ThreadPool::Global().ParallelForChunked(
          units, threads, [&](size_t chunk, size_t begin, size_t end) {
            std::vector<float> t0(max_spill_deg);
            std::vector<float> t1(max_spill_deg), t2(max_spill_deg);
            chunk_max[chunk] = run_units(begin, end, t0, t1, t2);
          });
      max_delta = static_cast<double>(
          *std::max_element(chunk_max.begin(), chunk_max.end()));
    }
    msg0.swap(nxt0);
    result.iterations = iter + 1;
    result.message_updates += static_cast<uint64_t>(slots);
    if (run.sweep_residuals != nullptr) {
      run.sweep_residuals->push_back(max_delta);
    }
    if (max_delta < opts.tol) {
      result.converged = true;
      break;
    }
  }

  auto beliefs = [&](size_t begin, size_t end) {
    size_t batch_end = std::min(end, num_batches);
    if (begin < batch_end) {
      BeliefsBatchRange(soa, begin, batch_end, pot0.data(), pot1.data(),
                        msg0.data(), result.p_up.data());
    }
    if (end > num_batches) {
      BeliefsSpill(soa, pot0.data(), pot1.data(), msg0.data(),
                   result.p_up.data());
    }
  };
  if (!parallel) {
    beliefs(0, units);
  } else {
    ThreadPool::Global().ParallelForChunked(
        units, threads,
        [&](size_t, size_t begin, size_t end) { beliefs(begin, end); });
  }

  if (run.final_msg != nullptr) {
    run.final_msg->resize(2 * slots);
    for (size_t s = 0; s < slots; ++s) {
      size_t orig = soa.orig_slot[s];
      double m0 = static_cast<double>(msg0[s]);
      (*run.final_msg)[2 * orig] = m0;
      (*run.final_msg)[2 * orig + 1] = 1.0 - m0;
    }
  }
}

}  // namespace trendspeed
