// Structure-of-arrays BP message layout and the vectorized sweep kernel.
//
// The scalar path in belief_propagation.cc stores messages interleaved
// (msg[2*slot], msg[2*slot+1]) in build order, which makes every vector
// load a stride-2 shuffle and every variable a variable-length serial loop.
// BpGraphSoa rearranges the same directed-edge structure for lockstep
// batches:
//
//   * split message planes: msg0[] and msg1[] are separate 64-byte-aligned
//     float arrays (util/aligned.h), so a batch touches two contiguous
//     cache streams instead of one strided one;
//   * degree-bucketed variable order: variables are grouped by degree and
//     packed into batches of kLanes (8) same-degree variables that update
//     in lockstep, one SIMD lane each;
//   * k-major batch slots: the k-th edge of all 8 batch variables is
//     contiguous (slot_base + k*8 + lane), so the incoming-message gather
//     indices, the compat planes, and the outgoing-message stores of one
//     k-step are all single aligned vector accesses;
//   * single message plane: messages are normalized per edge, so only the
//     plane-0 component is stored (msg1 == 1 - msg0 by construction) —
//     this halves the kernel's message traffic, which matters because the
//     sweep is memory-bandwidth-bound at scale (docs/performance.md);
//   * three compat planes instead of four: each 2x2 table is divided by
//     its row-0 sum R0 = c00 + c01 (an exact scalar reparameterization —
//     BP messages are normalized per edge, so any positive per-edge scale
//     cancels), leaving cA = c00/R0, cB = c10/R0, cC = R1/R0 with the
//     contraction out0 = cav0*cA + cav1*cB, z = cav0 + cav1*cC and
//     r0 = out0/z identical to the 4-plane form in exact arithmetic;
//   * spill list: per-degree remainders (< 8 variables), zero-degree
//     variables, degree > kMaxBatchDegree outliers, and variables whose
//     compat tables are too ill-conditioned for the 3-plane form (row-sum
//     ratio R1/R0 above kMaxCompatRowRatio, which would overflow cB/cC in
//     float) run through a scalar single-precision loop that keeps the
//     raw 4-entry tables.
//
// The kernel itself (bp_kernel_simd.cc, behind the TRENDSPEED_SIMD build
// option) computes cavity beliefs with prefix/suffix products instead of
// the scalar path's divide-and-fall-back, contracts the compat planes
// with FMAs, interleaves two same-degree batches per inner loop to hide
// the 4-cycle multiply latency of the running-product chains, and reduces
// the convergence residual with a lane max. It is selected per run by
// BpOptions::kernel, with runtime ISA dispatch — see BpSimdKernelAvailable
// below and docs/performance.md.

#ifndef TRENDSPEED_TREND_BP_KERNEL_H_
#define TRENDSPEED_TREND_BP_KERNEL_H_

#include <cstdint>
#include <vector>

#include "trend/belief_propagation.h"
#include "util/aligned.h"

namespace trendspeed {

struct BpGraphSoa {
  /// Lanes per lockstep batch. Fixed at 8 across architectures (AVX2 and
  /// the generic fallback use one 8-wide batch, NEON a pair of 4-wide
  /// halves) so the layout — and therefore the arithmetic and its rounding
  /// — does not depend on the host ISA.
  static constexpr uint32_t kLanes = 8;
  /// Variables above this degree spill to the scalar list: the kernel's
  /// per-batch scratch is sized by the largest batched degree, and a
  /// handful of hub variables is not worth a cache-hostile scratch plane.
  static constexpr uint32_t kMaxBatchDegree = 64;
  /// Maximum compat row-sum ratio R1/R0 (with R0 = c00 + c01 and
  /// R1 = c10 + c11) for a variable to be batch-eligible: the 3-plane form
  /// stores cB = c10/R0 and cC = R1/R0, both bounded by R1/R0, and keeping
  /// the ratio at or below 2^98 keeps them — and the runtime normalizer
  /// z = cav0 + cav1*cC with rescale-bounded cavities — far below FLT_MAX.
  /// The condition is scale-invariant, matching the BP semantics (a
  /// per-edge scale on the table cancels in the message normalization).
  /// Tables past the bound (a >1e29 ratio between the two rows of one 2x2
  /// — not produced by any real correlation model) and tables whose row 0
  /// flushed to zero in BpGraph's float storage keep their raw 4-entry
  /// form on the spill path.
  static constexpr double kMaxCompatRowRatio = 0x1p+98;

  size_t num_vars = 0;
  size_t num_slots = 0;  ///< directed edges, == BpGraph::off.back()

  /// One entry per full lockstep batch; batch b owns the kLanes variables
  /// batch_var[b*kLanes ...] and the slot range [slot_base,
  /// slot_base + deg*kLanes) laid out k-major.
  struct Batch {
    uint32_t deg = 0;
    size_t slot_base = 0;
  };
  std::vector<Batch> batches;
  AlignedVector<uint32_t> batch_var;
  size_t num_batch_vars = 0;  ///< == batch_var.size(); num_vars - spill.size()

  /// Scalar-path variables: bucket remainders, zero-degree variables,
  /// degree > kMaxBatchDegree outliers, and ill-conditioned-compat
  /// variables. Slots are var-major ([slot0, slot0 + deg)).
  struct SpillVar {
    uint32_t var = 0;
    uint32_t deg = 0;
    size_t slot0 = 0;
  };
  std::vector<SpillVar> spill;
  /// First spill slot; batch slots occupy [0, spill_slot_base).
  size_t spill_slot_base = 0;

  AlignedVector<uint32_t> rev;        ///< SoA slot of the reverse edge
  AlignedVector<uint32_t> orig_slot;  ///< SoA slot -> BpGraph slot
  /// Row-0-normalized compat planes for the batched slots (see file
  /// comment): cA = c00/R0, cB = c10/R0, cC = (c10+c11)/R0. Sized
  /// num_slots; entries in the spill region are filled but unused by the
  /// batch kernel.
  AlignedVector<float> cA, cB, cC;
  /// Raw 2x2 compat for the spill region only, indexed by
  /// slot - spill_slot_base. The spill loop is scalar, so it affords the
  /// unnormalized 4-entry form that has no conditioning precondition.
  AlignedVector<float> spill_c00, spill_c01, spill_c10, spill_c11;

  /// Rearranges a flattened BpGraph. Called from BpGraph::FromMrf (the
  /// single build point) when the build compiles the SIMD kernel in.
  static BpGraphSoa Build(const BpGraph& graph);
};

/// One vectorized inference run over a BpGraphSoa. Inputs mirror the scalar
/// path; messages cross the API boundary in the scalar interchange format
/// (interleaved doubles in BpGraph slot order) so BpState warm-start blobs
/// are interoperable between kernels in both directions.
struct BpSimdRun {
  const BpGraphSoa* soa = nullptr;
  const double* pot = nullptr;       ///< 2 * num_vars, interleaved
  const BpOptions* opts = nullptr;
  /// Null: cold start (all messages 0.5). Non-null: 2 * num_slots doubles
  /// in BpGraph slot order — the dense warm schedule seeds from them.
  const double* seed_msg = nullptr;
  /// When non-null, receives the final messages in BpGraph slot order (the
  /// BpState seed for the next slot).
  std::vector<double>* final_msg = nullptr;
  /// Receives iterations/converged/message_updates/p_up. active_vars and
  /// warm are the dispatcher's business.
  BpResult* result = nullptr;
  /// When non-null, receives one max-delta entry per executed sweep so the
  /// caller can replay them into the trendspeed_bp_residual histogram (the
  /// kernel TU stays free of the obs dependency).
  std::vector<double>* sweep_residuals = nullptr;
};

/// True when this binary contains the vectorized kernel (TRENDSPEED_SIMD=ON
/// at configure time).
bool BpSimdKernelCompiled();

/// True when the kernel is compiled in AND the running CPU can execute it:
/// on x86-64 the AVX2 variant additionally requires
/// __builtin_cpu_supports("avx2") at runtime; the NEON and generic variants
/// are always executable. Resolved once and cached.
bool BpSimdKernelAvailable();

/// The ISA variant compiled into this binary: "avx2", "neon", or "generic"
/// ("none" when TRENDSPEED_SIMD=OFF). Hardware-stamped into bench JSONs.
const char* BpSimdArchName();

/// Maps the requested kernel to the one that will actually run: kAuto and
/// kSimd resolve to kSimd when BpSimdKernelAvailable(), else kScalar.
BpKernel ResolveBpKernel(BpKernel requested);

/// Warm-start density crossover (docs/performance.md): a warm run under a
/// SIMD-resolved kernel switches from the scalar residual-prioritized
/// active-set schedule to dense vectorized sweeps (seeded from the stored
/// fixed point) when the initial active set exceeds this fraction of the
/// variables. Below it, sweeping only the active neighbourhoods beats even
/// a 10x-faster dense sweep; above it, the dense kernel wins because warm
/// sweeps touch most of the graph anyway.
inline constexpr double kBpWarmDenseCrossover = 0.10;

/// Executes the vectorized sweep schedule. Precondition:
/// BpSimdKernelAvailable() — dispatch through ResolveBpKernel; the
/// TRENDSPEED_SIMD=OFF stub aborts via TS_CHECK. Defined in
/// bp_kernel_simd.cc (stubbed in bp_kernel.cc when the kernel is not
/// compiled).
void RunBpSweepsSimd(const BpSimdRun& run);

}  // namespace trendspeed

#endif  // TRENDSPEED_TREND_BP_KERNEL_H_
