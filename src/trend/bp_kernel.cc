#include "trend/bp_kernel.h"

#include <algorithm>
#include <numeric>
#include <string_view>

#include "util/logging.h"

namespace trendspeed {

BpGraphSoa BpGraphSoa::Build(const BpGraph& g) {
  BpGraphSoa s;
  s.num_vars = g.num_vars;
  s.num_slots = g.num_vars == 0 ? 0 : g.off[g.num_vars];

  auto degree = [&](uint32_t v) {
    return static_cast<uint32_t>(g.off[v + 1] - g.off[v]);
  };
  // The 3-plane form is usable when row 0 has positive sum and the row
  // ratio stays below the float-overflow bound — see kMaxCompatRowRatio.
  auto well_conditioned = [&](size_t slot) {
    double r0 = static_cast<double>(g.compat[4 * slot + 0]) +
                static_cast<double>(g.compat[4 * slot + 1]);
    double r1 = static_cast<double>(g.compat[4 * slot + 2]) +
                static_cast<double>(g.compat[4 * slot + 3]);
    return r0 > 0.0 && r1 <= r0 * kMaxCompatRowRatio;
  };
  // Batch eligibility: degree in [1, kMaxBatchDegree] AND every incident
  // compat table well-conditioned. Ill-conditioned variables keep their
  // raw tables on the spill path.
  auto batchable = [&](uint32_t v) {
    uint32_t deg = degree(v);
    if (deg < 1 || deg > kMaxBatchDegree) return false;
    for (size_t slot = g.off[v]; slot < g.off[v + 1]; ++slot) {
      if (!well_conditioned(slot)) return false;
    }
    return true;
  };
  std::vector<uint32_t> order(g.num_vars);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    uint32_t da = degree(a), db = degree(b);
    if (da != db) return da < db;
    return a < b;
  });

  s.orig_slot.resize(s.num_slots);
  size_t cursor = 0;

  // Pass 1: full same-degree batches of kLanes batchable variables,
  // k-major slots. Emitting every batch before any spill variable keeps
  // each batch's slot base a multiple of kLanes — with the 64-byte plane
  // alignment that makes every batch access an aligned vector load/store.
  std::vector<uint32_t> bucket;
  for (size_t i = 0; i < order.size();) {
    uint32_t deg = degree(order[i]);
    size_t j = i;
    while (j < order.size() && degree(order[j]) == deg) ++j;
    if (deg >= 1 && deg <= kMaxBatchDegree) {
      bucket.clear();
      for (size_t t = i; t < j; ++t) {
        if (batchable(order[t])) bucket.push_back(order[t]);
      }
      size_t full = (bucket.size() / kLanes) * kLanes;
      for (size_t b = 0; b < full; b += kLanes) {
        Batch batch;
        batch.deg = deg;
        batch.slot_base = cursor;
        s.batches.push_back(batch);
        for (uint32_t lane = 0; lane < kLanes; ++lane) {
          uint32_t v = bucket[b + lane];
          s.batch_var.push_back(v);
          for (uint32_t k = 0; k < deg; ++k) {
            s.orig_slot[cursor + k * kLanes + lane] =
                static_cast<uint32_t>(g.off[v] + k);
          }
        }
        cursor += static_cast<size_t>(deg) * kLanes;
      }
    }
    i = j;
  }
  s.num_batch_vars = s.batch_var.size();
  s.spill_slot_base = cursor;

  // Pass 2: everything else (bucket remainders, zero-degree variables,
  // high-degree outliers, ill-conditioned compat) in var-major order.
  {
    std::vector<bool> in_batch(g.num_vars, false);
    for (uint32_t v : s.batch_var) in_batch[v] = true;
    for (uint32_t v : order) {
      if (in_batch[v]) continue;
      uint32_t deg = degree(v);
      SpillVar sv;
      sv.var = v;
      sv.deg = deg;
      sv.slot0 = cursor;
      s.spill.push_back(sv);
      for (uint32_t k = 0; k < deg; ++k) {
        s.orig_slot[cursor + k] = static_cast<uint32_t>(g.off[v] + k);
      }
      cursor += deg;
    }
  }
  TS_CHECK_EQ(cursor, s.num_slots);

  // Remap reverse-edge indices and derive the compat planes. Batch slots
  // get the row-0-normalized 3-plane form (computed in double, rounded
  // once to float); the spill region additionally keeps the raw 4-entry
  // tables, since the scalar spill loop has no conditioning precondition.
  std::vector<uint32_t> soa_of_orig(s.num_slots);
  for (size_t slot = 0; slot < s.num_slots; ++slot) {
    soa_of_orig[s.orig_slot[slot]] = static_cast<uint32_t>(slot);
  }
  s.rev.resize(s.num_slots);
  s.cA.resize(s.num_slots);
  s.cB.resize(s.num_slots);
  s.cC.resize(s.num_slots);
  size_t spill_slots = s.num_slots - s.spill_slot_base;
  s.spill_c00.resize(spill_slots);
  s.spill_c01.resize(spill_slots);
  s.spill_c10.resize(spill_slots);
  s.spill_c11.resize(spill_slots);
  for (size_t slot = 0; slot < s.num_slots; ++slot) {
    size_t orig = s.orig_slot[slot];
    s.rev[slot] = soa_of_orig[g.rev_slot[orig]];
    double c00 = g.compat[4 * orig + 0];
    double c01 = g.compat[4 * orig + 1];
    double c10 = g.compat[4 * orig + 2];
    double c11 = g.compat[4 * orig + 3];
    if (well_conditioned(orig)) {
      double r0 = c00 + c01;
      s.cA[slot] = static_cast<float>(c00 / r0);
      s.cB[slot] = static_cast<float>(c10 / r0);
      s.cC[slot] = static_cast<float>((c10 + c11) / r0);
    } else {
      // Ill-conditioned (spill-only by construction): benign placeholders.
      s.cA[slot] = 0.0f;
      s.cB[slot] = 0.0f;
      s.cC[slot] = 1.0f;
    }
    if (slot >= s.spill_slot_base) {
      size_t i = slot - s.spill_slot_base;
      s.spill_c00[i] = static_cast<float>(c00);
      s.spill_c01[i] = static_cast<float>(c01);
      s.spill_c10[i] = static_cast<float>(c10);
      s.spill_c11[i] = static_cast<float>(c11);
    }
  }
  return s;
}

bool BpSimdKernelCompiled() {
#if TRENDSPEED_SIMD_ENABLED
  return true;
#else
  return false;
#endif
}

bool BpSimdKernelAvailable() {
  static const bool available = [] {
    if (!BpSimdKernelCompiled()) return false;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    if (std::string_view(BpSimdArchName()) == "avx2") {
      return static_cast<bool>(__builtin_cpu_supports("avx2")) &&
             static_cast<bool>(__builtin_cpu_supports("fma"));
    }
#endif
    return true;  // NEON and the generic batch are baseline-executable
  }();
  return available;
}

BpKernel ResolveBpKernel(BpKernel requested) {
  if (requested == BpKernel::kScalar) return BpKernel::kScalar;
  return BpSimdKernelAvailable() ? BpKernel::kSimd : BpKernel::kScalar;
}

#if !TRENDSPEED_SIMD_ENABLED
const char* BpSimdArchName() { return "none"; }
void RunBpSweepsSimd(const BpSimdRun&) {
  TS_CHECK(false) << "SIMD BP kernel not compiled (TRENDSPEED_SIMD=OFF); "
                     "dispatch through ResolveBpKernel";
}
#endif

}  // namespace trendspeed
