#include "trend/belief_propagation.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/catalog.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace trendspeed {

namespace {

/// Below this variable count a sweep is a few hundred microseconds at most
/// and pool handoff overhead outweighs the parallel win; run serially.
constexpr size_t kMinParallelVars = 4096;

}  // namespace

BpGraph BpGraph::FromMrf(const PairwiseMrf& mrf) {
  BpGraph g;
  g.num_vars = mrf.num_vars();
  g.off.assign(g.num_vars + 1, 0);
  for (size_t v = 0; v < g.num_vars; ++v) {
    g.off[v + 1] = g.off[v] + mrf.Neighbors(v).size();
  }
  size_t dir_edges = g.off[g.num_vars];
  g.rev_slot.resize(dir_edges);
  g.compat.resize(4 * dir_edges);
  size_t slot = 0;
  for (size_t v = 0; v < g.num_vars; ++v) {
    g.max_degree = std::max(g.max_degree, mrf.Neighbors(v).size());
    for (const MrfEdge& e : mrf.Neighbors(v)) {
      g.rev_slot[slot] = static_cast<uint32_t>(g.off[e.to] + e.rev);
      g.compat[4 * slot + 0] = e.compat[0][0];
      g.compat[4 * slot + 1] = e.compat[0][1];
      g.compat[4 * slot + 2] = e.compat[1][0];
      g.compat[4 * slot + 3] = e.compat[1][1];
      ++slot;
    }
  }
  return g;
}

BpResult InferMarginalsBpFlat(const BpGraph& graph,
                              const std::vector<double>& pot,
                              const BpOptions& opts) {
  TS_CHECK_GE(opts.damping, 0.0);
  TS_CHECK_LT(opts.damping, 1.0);
  size_t n = graph.num_vars;
  TS_CHECK_EQ(pot.size(), 2 * n);
  size_t dir_edges = graph.off[n];

  // Handle registration is a shard-mutex lookup; done once per run, not per
  // sweep. All handles are null when opts.metrics is null, making every
  // record below a single predicted branch.
  obs::ScopedSpan span(opts.trace, "bp/infer");
  obs::Counter* m_runs = obs::GetCounter(opts.metrics, obs::kBpRunsTotal);
  obs::Counter* m_converged =
      obs::GetCounter(opts.metrics, obs::kBpConvergedTotal);
  obs::Counter* m_sweeps = obs::GetCounter(opts.metrics, obs::kBpSweepsTotal);
  obs::Counter* m_msg_updates =
      obs::GetCounter(opts.metrics, obs::kBpMessageUpdatesTotal);
  obs::Histogram* m_iterations =
      obs::GetHistogram(opts.metrics, obs::kBpIterations);
  obs::Histogram* m_residual =
      obs::GetHistogram(opts.metrics, obs::kBpResidual);
  obs::Add(m_runs);

  std::vector<double> msg(2 * dir_edges, 0.5);
  std::vector<double> next(2 * dir_edges, 0.5);

  BpResult result;
  result.p_up.assign(n, 0.5);
  if (n == 0) return result;

  // One Jacobi half-sweep over the outgoing messages of variables in
  // [begin, end): reads `msg`, writes `next` (slots of these variables
  // only — disjoint across chunks), returns the local max message change.
  // Per-variable arithmetic is independent of the chunking, so serial and
  // parallel sweeps are bitwise identical.
  auto sweep = [&](size_t begin, size_t end, std::vector<double>& in0,
                   std::vector<double>& in1) -> double {
    double local_max = 0.0;
    for (size_t v = begin; v < end; ++v) {
      size_t off = graph.off[v];
      size_t deg = graph.off[v + 1] - off;
      if (deg == 0) continue;
      // Belief factors: phi_v(x) * prod of incoming messages.
      double in_prod[2] = {pot[2 * v], pot[2 * v + 1]};
      for (size_t k = 0; k < deg; ++k) {
        size_t rs = graph.rev_slot[off + k];
        in0[k] = msg[2 * rs];
        in1[k] = msg[2 * rs + 1];
        in_prod[0] *= in0[k];
        in_prod[1] *= in1[k];
      }
      for (size_t k = 0; k < deg; ++k) {
        size_t slot = off + k;
        // Cavity belief of v excluding neighbour k (division fast path,
        // re-multiplication fallback when a message underflowed).
        double cav0, cav1;
        if (in0[k] > 1e-30 && in1[k] > 1e-30) {
          cav0 = in_prod[0] / in0[k];
          cav1 = in_prod[1] / in1[k];
        } else {
          cav0 = pot[2 * v];
          cav1 = pot[2 * v + 1];
          for (size_t k2 = 0; k2 < deg; ++k2) {
            if (k2 == k) continue;
            cav0 *= in0[k2];
            cav1 *= in1[k2];
          }
        }
        // Message v -> to: m(x_to) = sum_xv cav(xv) * psi(xv, x_to).
        const float* c = &graph.compat[4 * slot];
        double out0 = cav0 * c[0] + cav1 * c[2];
        double out1 = cav0 * c[1] + cav1 * c[3];
        double z = out0 + out1;
        if (z <= 0.0 || !std::isfinite(z)) {
          out0 = out1 = 0.5;
        } else {
          out0 /= z;
          out1 /= z;
        }
        double old0 = msg[2 * slot];
        double new0 = opts.damping * old0 + (1.0 - opts.damping) * out0;
        double new1 =
            opts.damping * msg[2 * slot + 1] + (1.0 - opts.damping) * out1;
        next[2 * slot] = new0;
        next[2 * slot + 1] = new1;
        double delta = std::fabs(new0 - old0);
        if (delta > local_max) local_max = delta;
      }
    }
    return local_max;
  };

  size_t threads = std::min<size_t>(EffectiveThreads(opts.num_threads), n);
  bool parallel = threads > 1 && n >= kMinParallelVars;
  std::vector<double> in0(graph.max_degree), in1(graph.max_degree);

  double max_delta = 0.0;
  for (uint32_t iter = 0; iter < opts.max_iters; ++iter) {
    if (!parallel) {
      max_delta = sweep(0, n, in0, in1);
    } else {
      // max() is order-independent, so a CAS-max reduction keeps the
      // convergence decision — hence the iteration count and the final
      // marginals — bitwise deterministic for any thread count.
      std::atomic<double> shared_max{0.0};
      ThreadPool::Global().ParallelForChunked(
          n, threads, [&](size_t, size_t begin, size_t end) {
            std::vector<double> t0(graph.max_degree), t1(graph.max_degree);
            double local = sweep(begin, end, t0, t1);
            double cur = shared_max.load(std::memory_order_relaxed);
            while (local > cur &&
                   !shared_max.compare_exchange_weak(cur, local)) {
            }
          });
      max_delta = shared_max.load();
    }
    msg.swap(next);
    result.iterations = iter + 1;
    obs::Add(m_sweeps);
    obs::Add(m_msg_updates, static_cast<uint64_t>(dir_edges));
    obs::Observe(m_residual, max_delta);
    if (max_delta < opts.tol) {
      result.converged = true;
      break;
    }
  }
  obs::Observe(m_iterations, static_cast<double>(result.iterations));
  if (result.converged) obs::Add(m_converged);

  // Beliefs. Hard 0/1 potentials (clamped evidence) stay hard because
  // the potential factor multiplies every belief.
  auto beliefs = [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      double b0 = pot[2 * v];
      double b1 = pot[2 * v + 1];
      for (size_t k = graph.off[v]; k < graph.off[v + 1]; ++k) {
        size_t rs = graph.rev_slot[k];
        b0 *= msg[2 * rs];
        b1 *= msg[2 * rs + 1];
      }
      double z = b0 + b1;
      result.p_up[v] = (z > 0.0 && std::isfinite(z)) ? b1 / z : 0.5;
    }
  };
  if (!parallel) {
    beliefs(0, n);
  } else {
    ThreadPool::Global().ParallelForChunked(
        n, threads,
        [&](size_t, size_t begin, size_t end) { beliefs(begin, end); });
  }
  return result;
}

BpResult InferMarginalsBp(const PairwiseMrf& mrf, const BpOptions& opts) {
  BpGraph graph = BpGraph::FromMrf(mrf);
  std::vector<double> pot(2 * mrf.num_vars());
  for (size_t v = 0; v < mrf.num_vars(); ++v) {
    pot[2 * v] = mrf.EffectivePotential(v, 0);
    pot[2 * v + 1] = mrf.EffectivePotential(v, 1);
  }
  return InferMarginalsBpFlat(graph, pot, opts);
}

}  // namespace trendspeed
