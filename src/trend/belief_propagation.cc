#include "trend/belief_propagation.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "obs/catalog.h"
#include "trend/bp_kernel.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace trendspeed {

namespace {

/// Below this variable count a sweep is a few hundred microseconds at most
/// and pool handoff overhead outweighs the parallel win; run serially.
constexpr size_t kMinParallelVars = 4096;

/// The division fast path for cavity beliefs is only numerically valid
/// while the running in_prod is a normal double: gradual underflow zeroes
/// or denormalizes the product even when every individual message passes
/// the per-edge 1e-30 check, and dividing a flushed product yields a cavity
/// with the wrong ratio. (An in_prod that is exactly zero because some
/// factor is exactly zero is fine — 0 / in = 0 IS the cavity.)
constexpr double kMinNormal = std::numeric_limits<double>::min();

/// Power-of-two rescale for the fallback prefix/suffix products and the
/// belief products: exact in binary floating point, applied to both planes
/// together so every ratio — and therefore every normalized message and
/// marginal — is unchanged. The window keeps any prefix x suffix product of
/// in-range values normal.
constexpr double kRescaleLo = 0x1p-256;
constexpr double kRescaleUp = 0x1p+256;

/// Per-variable scratch for one sweep chunk. pre/suf hold the
/// prefix/suffix cavity products of the underflow fallback; they are only
/// filled for variables whose fast path is invalid, so the common case
/// costs nothing beyond the allocation.
struct SweepScratch {
  std::vector<double> in0, in1, pre0, pre1, suf0, suf1;
  explicit SweepScratch(size_t max_degree)
      : in0(max_degree), in1(max_degree), pre0(max_degree), pre1(max_degree),
        suf0(max_degree), suf1(max_degree) {}
};

}  // namespace

BpGraph BpGraph::FromMrf(const PairwiseMrf& mrf) {
  BpGraph g;
  g.num_vars = mrf.num_vars();
  g.off.assign(g.num_vars + 1, 0);
  for (size_t v = 0; v < g.num_vars; ++v) {
    g.off[v + 1] = g.off[v] + mrf.Neighbors(v).size();
  }
  size_t dir_edges = g.off[g.num_vars];
  g.rev_slot.resize(dir_edges);
  g.to.resize(dir_edges);
  g.compat.resize(4 * dir_edges);
  size_t slot = 0;
  for (size_t v = 0; v < g.num_vars; ++v) {
    g.max_degree = std::max(g.max_degree, mrf.Neighbors(v).size());
    for (const MrfEdge& e : mrf.Neighbors(v)) {
      g.rev_slot[slot] = static_cast<uint32_t>(g.off[e.to] + e.rev);
      g.to[slot] = static_cast<uint32_t>(e.to);
      g.compat[4 * slot + 0] = e.compat[0][0];
      g.compat[4 * slot + 1] = e.compat[0][1];
      g.compat[4 * slot + 2] = e.compat[1][0];
      g.compat[4 * slot + 3] = e.compat[1][1];
      ++slot;
    }
  }
#if TRENDSPEED_SIMD_ENABLED
  g.soa = std::make_shared<const BpGraphSoa>(BpGraphSoa::Build(g));
#endif
  return g;
}

const char* BpKernelName(BpKernel kernel) {
  switch (kernel) {
    case BpKernel::kScalar:
      return "scalar";
    case BpKernel::kSimd:
      return "simd";
    case BpKernel::kAuto:
      return "auto";
  }
  return "unknown";
}

bool ParseBpKernel(const std::string& name, BpKernel* out) {
  if (name == "scalar") {
    *out = BpKernel::kScalar;
  } else if (name == "simd") {
    *out = BpKernel::kSimd;
  } else if (name == "auto") {
    *out = BpKernel::kAuto;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Full cold schedule: damped Jacobi sweeps over every variable. This is
/// the pre-warm-start inference path, bit for bit; when `final_msg` is
/// non-null it receives the message vector the reported beliefs were
/// computed from (the warm-start seed for the next slot).
BpResult RunColdBp(const BpGraph& graph, const std::vector<double>& pot,
                   const BpOptions& opts, std::vector<double>* final_msg) {
  TS_CHECK_GE(opts.damping, 0.0);
  TS_CHECK_LT(opts.damping, 1.0);
  size_t n = graph.num_vars;
  TS_CHECK_EQ(pot.size(), 2 * n);
  size_t dir_edges = graph.off[n];

  // Handle registration is a shard-mutex lookup; done once per run, not per
  // sweep. All handles are null when opts.metrics is null, making every
  // record below a single predicted branch.
  obs::ScopedSpan span(opts.trace, "bp/infer");
  obs::Counter* m_runs = obs::GetCounter(opts.metrics, obs::kBpRunsTotal);
  obs::Counter* m_converged =
      obs::GetCounter(opts.metrics, obs::kBpConvergedTotal);
  obs::Counter* m_sweeps = obs::GetCounter(opts.metrics, obs::kBpSweepsTotal);
  obs::Counter* m_msg_updates =
      obs::GetCounter(opts.metrics, obs::kBpMessageUpdatesTotal);
  obs::Histogram* m_iterations =
      obs::GetHistogram(opts.metrics, obs::kBpIterations);
  obs::Histogram* m_residual =
      obs::GetHistogram(opts.metrics, obs::kBpResidual);
  obs::Add(m_runs);
  obs::Add(obs::GetCounter(opts.metrics, obs::kBpKernelRunsScalar));

  std::vector<double> msg(2 * dir_edges, 0.5);
  std::vector<double> next(2 * dir_edges, 0.5);

  BpResult result;
  result.p_up.assign(n, 0.5);
  result.active_vars = n;
  if (n == 0) {
    if (final_msg != nullptr) final_msg->clear();
    return result;
  }

  // One Jacobi half-sweep over the outgoing messages of variables in
  // [begin, end): reads `msg`, writes `next` (slots of these variables
  // only — disjoint across chunks), returns the local max message change.
  // Per-variable arithmetic is independent of the chunking, so serial and
  // parallel sweeps are bitwise identical.
  auto sweep = [&](size_t begin, size_t end, SweepScratch& s) -> double {
    std::vector<double>& in0 = s.in0;
    std::vector<double>& in1 = s.in1;
    double local_max = 0.0;
    for (size_t v = begin; v < end; ++v) {
      size_t off = graph.off[v];
      size_t deg = graph.off[v + 1] - off;
      if (deg == 0) continue;
      // Belief factors: phi_v(x) * prod of incoming messages.
      double in_prod[2] = {pot[2 * v], pot[2 * v + 1]};
      bool zero0 = pot[2 * v] == 0.0, zero1 = pot[2 * v + 1] == 0.0;
      bool any_small = false;
      for (size_t k = 0; k < deg; ++k) {
        size_t rs = graph.rev_slot[off + k];
        in0[k] = msg[2 * rs];
        in1[k] = msg[2 * rs + 1];
        in_prod[0] *= in0[k];
        in_prod[1] *= in1[k];
        zero0 = zero0 || in0[k] == 0.0;
        zero1 = zero1 || in1[k] == 0.0;
        any_small = any_small || in0[k] <= 1e-30 || in1[k] <= 1e-30;
      }
      // See kMinNormal: a zero in_prod is trustworthy only when some factor
      // is exactly zero; a subnormal one never is.
      bool prod_ok = (in_prod[0] >= kMinNormal || zero0) &&
                     (in_prod[1] >= kMinNormal || zero1);
      if (!prod_ok || any_small) {
        // Underflow fallback, hoisted: one prefix/suffix pass per variable
        // (cav[k] = pre[k] * suf[k]) replaces the per-edge O(deg)
        // recomputation — O(deg) total instead of O(deg^2) — and the
        // rescale keeps the running products away from the subnormal range
        // the fast path just tripped on. Both planes share each rescale
        // factor, so normalized messages are unaffected by it. The seed
        // needs the same treatment: a potential pair already below the
        // window would otherwise be stored as pre[0] unrescaled and flush
        // the k = 0 cavity to zero.
        double p0 = pot[2 * v], p1 = pot[2 * v + 1];
        while (std::max(p0, p1) < kRescaleLo && std::max(p0, p1) > 0.0) {
          p0 *= kRescaleUp;
          p1 *= kRescaleUp;
        }
        for (size_t k = 0; k < deg; ++k) {
          s.pre0[k] = p0;
          s.pre1[k] = p1;
          p0 *= in0[k];
          p1 *= in1[k];
          while (std::max(p0, p1) < kRescaleLo && std::max(p0, p1) > 0.0) {
            p0 *= kRescaleUp;
            p1 *= kRescaleUp;
          }
        }
        double q0 = 1.0, q1 = 1.0;
        for (size_t k = deg; k-- > 0;) {
          s.suf0[k] = q0;
          s.suf1[k] = q1;
          q0 *= in0[k];
          q1 *= in1[k];
          while (std::max(q0, q1) < kRescaleLo && std::max(q0, q1) > 0.0) {
            q0 *= kRescaleUp;
            q1 *= kRescaleUp;
          }
        }
      }
      for (size_t k = 0; k < deg; ++k) {
        size_t slot = off + k;
        // Cavity belief of v excluding neighbour k: division fast path
        // when it is exact-safe, prefix x suffix otherwise.
        double cav0, cav1;
        if (prod_ok && in0[k] > 1e-30 && in1[k] > 1e-30) {
          cav0 = in_prod[0] / in0[k];
          cav1 = in_prod[1] / in1[k];
        } else {
          cav0 = s.pre0[k] * s.suf0[k];
          cav1 = s.pre1[k] * s.suf1[k];
        }
        // Message v -> to: m(x_to) = sum_xv cav(xv) * psi(xv, x_to).
        const float* c = &graph.compat[4 * slot];
        double out0 = cav0 * c[0] + cav1 * c[2];
        double out1 = cav0 * c[1] + cav1 * c[3];
        double z = out0 + out1;
        if (z <= 0.0 || !std::isfinite(z)) {
          out0 = out1 = 0.5;
        } else {
          out0 /= z;
          out1 /= z;
        }
        double old0 = msg[2 * slot];
        double new0 = opts.damping * old0 + (1.0 - opts.damping) * out0;
        double new1 =
            opts.damping * msg[2 * slot + 1] + (1.0 - opts.damping) * out1;
        next[2 * slot] = new0;
        next[2 * slot + 1] = new1;
        double delta = std::fabs(new0 - old0);
        if (delta > local_max) local_max = delta;
      }
    }
    return local_max;
  };

  size_t threads = std::min<size_t>(EffectiveThreads(opts.num_threads), n);
  bool parallel = threads > 1 && n >= kMinParallelVars;
  SweepScratch scratch(graph.max_degree);

  double max_delta = 0.0;
  for (uint32_t iter = 0; iter < opts.max_iters; ++iter) {
    if (!parallel) {
      max_delta = sweep(0, n, scratch);
    } else {
      // max() is order-independent, so a CAS-max reduction keeps the
      // convergence decision — hence the iteration count and the final
      // marginals — bitwise deterministic for any thread count.
      std::atomic<double> shared_max{0.0};
      ThreadPool::Global().ParallelForChunked(
          n, threads, [&](size_t, size_t begin, size_t end) {
            SweepScratch t(graph.max_degree);
            double local = sweep(begin, end, t);
            double cur = shared_max.load(std::memory_order_relaxed);
            while (local > cur &&
                   !shared_max.compare_exchange_weak(cur, local)) {
            }
          });
      max_delta = shared_max.load();
    }
    msg.swap(next);
    result.iterations = iter + 1;
    result.message_updates += static_cast<uint64_t>(dir_edges);
    obs::Add(m_sweeps);
    obs::Add(m_msg_updates, static_cast<uint64_t>(dir_edges));
    obs::Observe(m_residual, max_delta);
    if (max_delta < opts.tol) {
      result.converged = true;
      break;
    }
  }
  obs::Observe(m_iterations, static_cast<double>(result.iterations));
  if (result.converged) obs::Add(m_converged);

  // Beliefs. Hard 0/1 potentials (clamped evidence) stay hard because
  // the potential factor multiplies every belief.
  auto beliefs = [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      double b0 = pot[2 * v];
      double b1 = pot[2 * v + 1];
      for (size_t k = graph.off[v]; k < graph.off[v + 1]; ++k) {
        size_t rs = graph.rev_slot[k];
        b0 *= msg[2 * rs];
        b1 *= msg[2 * rs + 1];
        // Same exact rescale as the cavity fallback: keeps near-zero
        // potentials from flushing both belief factors to zero (which
        // would erase the marginal into the z <= 0 0.5 guard).
        if (std::max(b0, b1) < kRescaleLo && std::max(b0, b1) > 0.0) {
          b0 *= kRescaleUp;
          b1 *= kRescaleUp;
        }
      }
      double z = b0 + b1;
      result.p_up[v] = (z > 0.0 && std::isfinite(z)) ? b1 / z : 0.5;
    }
  };
  if (!parallel) {
    beliefs(0, n);
  } else {
    ThreadPool::Global().ParallelForChunked(
        n, threads,
        [&](size_t, size_t begin, size_t end) { beliefs(begin, end); });
  }
  if (final_msg != nullptr) *final_msg = std::move(msg);
  return result;
}

/// Warm schedule: messages start at the previous fixed point and only an
/// active set of variables is swept, highest residual first. Serial and
/// in-place (Gauss-Seidel order): the win is touching few variables, not
/// fanning a full sweep out over threads, and in-place propagation of
/// fresh messages converges in fewer passes than the two-phase schedule.
BpResult RunWarmBp(const BpGraph& graph, const std::vector<double>& pot,
                   const BpOptions& opts, BpState* state) {
  TS_CHECK_GE(opts.damping, 0.0);
  TS_CHECK_LT(opts.damping, 1.0);
  size_t n = graph.num_vars;
  TS_CHECK_EQ(pot.size(), 2 * n);

  obs::ScopedSpan span(opts.trace, "bp/infer");
  obs::Counter* m_runs = obs::GetCounter(opts.metrics, obs::kBpRunsTotal);
  obs::Counter* m_converged =
      obs::GetCounter(opts.metrics, obs::kBpConvergedTotal);
  obs::Counter* m_sweeps = obs::GetCounter(opts.metrics, obs::kBpSweepsTotal);
  obs::Counter* m_msg_updates =
      obs::GetCounter(opts.metrics, obs::kBpMessageUpdatesTotal);
  obs::Counter* m_warm_starts =
      obs::GetCounter(opts.metrics, obs::kBpWarmStartsTotal);
  obs::Histogram* m_iterations =
      obs::GetHistogram(opts.metrics, obs::kBpIterations);
  obs::Histogram* m_residual =
      obs::GetHistogram(opts.metrics, obs::kBpResidual);
  obs::Histogram* m_active_vars =
      obs::GetHistogram(opts.metrics, obs::kBpActiveVars);
  obs::Histogram* m_sweeps_saved =
      obs::GetHistogram(opts.metrics, obs::kBpSweepsSaved);
  obs::Add(m_runs);
  obs::Add(m_warm_starts);
  obs::Add(obs::GetCounter(opts.metrics, obs::kBpKernelRunsScalar));

  std::vector<double>& msg = state->msg;
  BpResult result;
  result.warm = true;
  result.p_up.assign(n, 0.5);

  // Initial active set: variables whose effective potentials moved beyond
  // the warm threshold since their messages were last refreshed.
  // `residual` carries the sweep priority; `pending` accumulates the next
  // sweep's activations.
  std::vector<double> residual(n, 0.0);
  std::vector<double> pending(n, 0.0);
  std::vector<uint32_t> active;
  for (size_t v = 0; v < n; ++v) {
    double d = std::max(std::fabs(pot[2 * v] - state->last_pot[2 * v]),
                        std::fabs(pot[2 * v + 1] - state->last_pot[2 * v + 1]));
    if (d > opts.warm_threshold) {
      residual[v] = d;
      active.push_back(static_cast<uint32_t>(v));
    }
  }
  result.active_vars = active.size();
  obs::Observe(m_active_vars, static_cast<double>(active.size()));

  SweepScratch s(graph.max_degree);
  std::vector<double>& in0 = s.in0;
  std::vector<double>& in1 = s.in1;
  std::vector<char> touched(n, 0);
  std::vector<uint32_t> next_active;

  // Retire/expand at a fraction of tol: the cold schedule already stops
  // within ~tol of the fixed point, and warm message errors stack on top of
  // that slack across neighbours and slots. Driving the active set a notch
  // further keeps the combined warm-vs-cold gap inside the documented
  // 10x-tol bound at the cost of roughly one extra (cheap) sweep.
  const double act_tol = 0.5 * opts.tol;

  for (uint32_t iter = 0; iter < opts.max_iters && !active.empty(); ++iter) {
    // Residual-prioritized, deterministic: largest pending change first,
    // index tiebreak. In-place updates let high-residual information flow
    // through the rest of the active set within the same sweep.
    std::sort(active.begin(), active.end(),
              [&](uint32_t a, uint32_t b) {
                if (residual[a] != residual[b]) {
                  return residual[a] > residual[b];
                }
                return a < b;
              });
    next_active.clear();
    double sweep_max = 0.0;
    for (uint32_t v : active) {
      touched[v] = 1;
      size_t off = graph.off[v];
      size_t deg = graph.off[v + 1] - off;
      if (deg == 0) continue;
      double in_prod[2] = {pot[2 * v], pot[2 * v + 1]};
      bool zero0 = pot[2 * v] == 0.0, zero1 = pot[2 * v + 1] == 0.0;
      bool any_small = false;
      for (size_t k = 0; k < deg; ++k) {
        size_t rs = graph.rev_slot[off + k];
        in0[k] = msg[2 * rs];
        in1[k] = msg[2 * rs + 1];
        in_prod[0] *= in0[k];
        in_prod[1] *= in1[k];
        zero0 = zero0 || in0[k] == 0.0;
        zero1 = zero1 || in1[k] == 0.0;
        any_small = any_small || in0[k] <= 1e-30 || in1[k] <= 1e-30;
      }
      // Same underflow-hardened cavity scheme as the cold sweep (see the
      // comments there): trustworthy-product check, then a hoisted
      // prefix/suffix fallback instead of the old O(deg^2) recomputation.
      bool prod_ok = (in_prod[0] >= kMinNormal || zero0) &&
                     (in_prod[1] >= kMinNormal || zero1);
      if (!prod_ok || any_small) {
        double p0 = pot[2 * v], p1 = pot[2 * v + 1];
        while (std::max(p0, p1) < kRescaleLo && std::max(p0, p1) > 0.0) {
          p0 *= kRescaleUp;
          p1 *= kRescaleUp;
        }
        for (size_t k = 0; k < deg; ++k) {
          s.pre0[k] = p0;
          s.pre1[k] = p1;
          p0 *= in0[k];
          p1 *= in1[k];
          while (std::max(p0, p1) < kRescaleLo && std::max(p0, p1) > 0.0) {
            p0 *= kRescaleUp;
            p1 *= kRescaleUp;
          }
        }
        double q0 = 1.0, q1 = 1.0;
        for (size_t k = deg; k-- > 0;) {
          s.suf0[k] = q0;
          s.suf1[k] = q1;
          q0 *= in0[k];
          q1 *= in1[k];
          while (std::max(q0, q1) < kRescaleLo && std::max(q0, q1) > 0.0) {
            q0 *= kRescaleUp;
            q1 *= kRescaleUp;
          }
        }
      }
      double self_max = 0.0;
      for (size_t k = 0; k < deg; ++k) {
        size_t slot = off + k;
        double cav0, cav1;
        if (prod_ok && in0[k] > 1e-30 && in1[k] > 1e-30) {
          cav0 = in_prod[0] / in0[k];
          cav1 = in_prod[1] / in1[k];
        } else {
          cav0 = s.pre0[k] * s.suf0[k];
          cav1 = s.pre1[k] * s.suf1[k];
        }
        const float* c = &graph.compat[4 * slot];
        double out0 = cav0 * c[0] + cav1 * c[2];
        double out1 = cav0 * c[1] + cav1 * c[3];
        double z = out0 + out1;
        if (z <= 0.0 || !std::isfinite(z)) {
          out0 = out1 = 0.5;
        } else {
          out0 /= z;
          out1 /= z;
        }
        double old0 = msg[2 * slot];
        double new0 = opts.damping * old0 + (1.0 - opts.damping) * out0;
        double new1 =
            opts.damping * msg[2 * slot + 1] + (1.0 - opts.damping) * out1;
        msg[2 * slot] = new0;
        msg[2 * slot + 1] = new1;
        double delta = std::fabs(new0 - old0);
        if (delta > self_max) self_max = delta;
        if (delta > act_tol) {
          // The receiver's belief moved: it must re-send next sweep.
          uint32_t t = graph.to[slot];
          if (pending[t] == 0.0) next_active.push_back(t);
          if (delta > pending[t]) pending[t] = delta;
        }
      }
      result.message_updates += static_cast<uint64_t>(deg);
      if (self_max > act_tol) {
        // Damping leaves a geometric residue on v's own outgoing messages;
        // keep v active until that residue decays below tol.
        if (pending[v] == 0.0) next_active.push_back(v);
        if (self_max > pending[v]) pending[v] = self_max;
      }
      if (self_max > sweep_max) sweep_max = self_max;
    }
    active.clear();
    for (uint32_t v : next_active) {
      residual[v] = pending[v];
      pending[v] = 0.0;
      active.push_back(v);
    }
    result.iterations = iter + 1;
    obs::Add(m_sweeps);
    obs::Observe(m_residual, sweep_max);
  }
  obs::Add(m_msg_updates, result.message_updates);
  obs::Observe(m_iterations, static_cast<double>(result.iterations));
  obs::Observe(m_sweeps_saved,
               static_cast<double>(opts.max_iters - result.iterations));
  result.converged = active.empty();
  if (result.converged) obs::Add(m_converged);

  for (size_t v = 0; v < n; ++v) {
    double b0 = pot[2 * v];
    double b1 = pot[2 * v + 1];
    for (size_t k = graph.off[v]; k < graph.off[v + 1]; ++k) {
      size_t rs = graph.rev_slot[k];
      b0 *= msg[2 * rs];
      b1 *= msg[2 * rs + 1];
      if (std::max(b0, b1) < kRescaleLo && std::max(b0, b1) > 0.0) {
        b0 *= kRescaleUp;
        b1 *= kRescaleUp;
      }
    }
    double z = b0 + b1;
    result.p_up[v] = (z > 0.0 && std::isfinite(z)) ? b1 / z : 0.5;
  }

  // Refresh the stored potentials only where messages were recomputed:
  // untouched variables keep accumulating their sub-threshold drift, which
  // is what bounds the steady-state approximation error.
  for (size_t v = 0; v < n; ++v) {
    if (touched[v]) {
      state->last_pot[2 * v] = pot[2 * v];
      state->last_pot[2 * v + 1] = pot[2 * v + 1];
    }
  }
  return result;
}

/// Cold schedule on the vectorized SoA kernel: same Jacobi sweep structure
/// and convergence rule as RunColdBp, executed by trend/bp_kernel_simd.cc.
/// Records the same metric series (per-sweep residuals are replayed from
/// the kernel so the kernel TU stays free of the obs dependency).
BpResult RunColdSimd(const BpGraph& graph, const std::vector<double>& pot,
                     const BpOptions& opts, std::vector<double>* final_msg) {
  TS_CHECK_GE(opts.damping, 0.0);
  TS_CHECK_LT(opts.damping, 1.0);
  size_t n = graph.num_vars;
  TS_CHECK_EQ(pot.size(), 2 * n);

  obs::ScopedSpan span(opts.trace, "bp/infer");
  obs::Counter* m_runs = obs::GetCounter(opts.metrics, obs::kBpRunsTotal);
  obs::Counter* m_converged =
      obs::GetCounter(opts.metrics, obs::kBpConvergedTotal);
  obs::Counter* m_sweeps = obs::GetCounter(opts.metrics, obs::kBpSweepsTotal);
  obs::Counter* m_msg_updates =
      obs::GetCounter(opts.metrics, obs::kBpMessageUpdatesTotal);
  obs::Histogram* m_iterations =
      obs::GetHistogram(opts.metrics, obs::kBpIterations);
  obs::Histogram* m_residual =
      obs::GetHistogram(opts.metrics, obs::kBpResidual);
  obs::Add(m_runs);
  obs::Add(obs::GetCounter(opts.metrics, obs::kBpKernelRunsSimd));

  BpResult result;
  result.active_vars = n;
  std::vector<double> sweep_residuals;
  BpSimdRun run;
  run.soa = graph.soa.get();
  run.pot = pot.data();
  run.opts = &opts;
  run.final_msg = final_msg;
  run.result = &result;
  run.sweep_residuals = opts.metrics != nullptr ? &sweep_residuals : nullptr;
  RunBpSweepsSimd(run);

  for (double r : sweep_residuals) {
    obs::Add(m_sweeps);
    obs::Observe(m_residual, r);
  }
  obs::Add(m_msg_updates, result.message_updates);
  obs::Observe(m_iterations, static_cast<double>(result.iterations));
  if (result.converged) obs::Add(m_converged);
  return result;
}

/// Warm run above the density crossover: the active set is already most of
/// the graph, so residual-prioritized scalar sweeps would touch nearly
/// every edge anyway — dense vectorized Jacobi sweeps seeded from the
/// stored fixed point are faster. Every message is recomputed, so the
/// stored state refreshes wholesale.
BpResult RunWarmDenseSimd(const BpGraph& graph, const std::vector<double>& pot,
                          const BpOptions& opts, BpState* state,
                          size_t active_count) {
  obs::ScopedSpan span(opts.trace, "bp/infer");
  obs::Counter* m_runs = obs::GetCounter(opts.metrics, obs::kBpRunsTotal);
  obs::Counter* m_converged =
      obs::GetCounter(opts.metrics, obs::kBpConvergedTotal);
  obs::Counter* m_sweeps = obs::GetCounter(opts.metrics, obs::kBpSweepsTotal);
  obs::Counter* m_msg_updates =
      obs::GetCounter(opts.metrics, obs::kBpMessageUpdatesTotal);
  obs::Counter* m_warm_starts =
      obs::GetCounter(opts.metrics, obs::kBpWarmStartsTotal);
  obs::Histogram* m_iterations =
      obs::GetHistogram(opts.metrics, obs::kBpIterations);
  obs::Histogram* m_residual =
      obs::GetHistogram(opts.metrics, obs::kBpResidual);
  obs::Histogram* m_active_vars =
      obs::GetHistogram(opts.metrics, obs::kBpActiveVars);
  obs::Histogram* m_sweeps_saved =
      obs::GetHistogram(opts.metrics, obs::kBpSweepsSaved);
  obs::Add(m_runs);
  obs::Add(m_warm_starts);
  obs::Add(obs::GetCounter(opts.metrics, obs::kBpKernelRunsSimd));
  obs::Add(obs::GetCounter(opts.metrics, obs::kBpKernelWarmDenseTotal));
  obs::Observe(m_active_vars, static_cast<double>(active_count));

  BpResult result;
  result.warm = true;
  result.active_vars = active_count;
  std::vector<double> sweep_residuals;
  std::vector<double> new_msg;
  BpSimdRun run;
  run.soa = graph.soa.get();
  run.pot = pot.data();
  run.opts = &opts;
  run.seed_msg = state->msg.data();
  run.final_msg = &new_msg;
  run.result = &result;
  run.sweep_residuals = opts.metrics != nullptr ? &sweep_residuals : nullptr;
  RunBpSweepsSimd(run);
  state->msg = std::move(new_msg);
  state->last_pot = pot;

  for (double r : sweep_residuals) {
    obs::Add(m_sweeps);
    obs::Observe(m_residual, r);
  }
  obs::Add(m_msg_updates, result.message_updates);
  obs::Observe(m_iterations, static_cast<double>(result.iterations));
  obs::Observe(m_sweeps_saved,
               static_cast<double>(opts.max_iters - result.iterations));
  if (result.converged) obs::Add(m_converged);
  return result;
}

/// True when this run should execute the vectorized kernel. A kSimd/kAuto
/// request falls back to scalar — and bumps the fallback counter — when
/// the kernel is not compiled in (TRENDSPEED_SIMD=OFF leaves graph.soa
/// null) or the CPU cannot run it. The warm-path density crossover is NOT
/// a fallback and is decided by the caller.
bool UseSimdKernel(const BpGraph& graph, const BpOptions& opts) {
  if (opts.kernel == BpKernel::kScalar) return false;
  if (ResolveBpKernel(opts.kernel) == BpKernel::kSimd &&
      graph.soa != nullptr) {
    return true;
  }
  obs::Add(
      obs::GetCounter(opts.metrics, obs::kBpKernelSimdFallbacksTotal));
  return false;
}

}  // namespace

BpResult InferMarginalsBpFlat(const BpGraph& graph,
                              const std::vector<double>& pot,
                              const BpOptions& opts) {
  if (UseSimdKernel(graph, opts)) {
    return RunColdSimd(graph, pot, opts, nullptr);
  }
  return RunColdBp(graph, pot, opts, nullptr);
}

BpResult InferMarginalsBpFlat(const BpGraph& graph,
                              const std::vector<double>& pot,
                              const BpOptions& opts, BpState* state) {
  if (state == nullptr) return InferMarginalsBpFlat(graph, pot, opts);
  TS_CHECK_GE(opts.warm_threshold, 0.0);
  size_t n = graph.num_vars;
  size_t dir_edges = graph.off[n];
  bool warm = state->valid && state->msg.size() == 2 * dir_edges &&
              state->last_pot.size() == 2 * n;
  bool use_simd = UseSimdKernel(graph, opts);
  if (warm) {
    if (use_simd) {
      // Density crossover (bp_kernel.h): count the variables the scalar
      // warm schedule would activate; when they exceed the crossover
      // fraction, the active-set sweeps would touch most of the graph
      // anyway and dense vectorized sweeps win. Below it, the sparse
      // scalar schedule stays faster than even a much faster dense sweep.
      size_t active = 0;
      for (size_t v = 0; v < n; ++v) {
        double d =
            std::max(std::fabs(pot[2 * v] - state->last_pot[2 * v]),
                     std::fabs(pot[2 * v + 1] - state->last_pot[2 * v + 1]));
        if (d > opts.warm_threshold) ++active;
      }
      if (static_cast<double>(active) >
          kBpWarmDenseCrossover * static_cast<double>(n)) {
        return RunWarmDenseSimd(graph, pot, opts, state, active);
      }
    }
    return RunWarmBp(graph, pot, opts, state);
  }
  // Cold start that seeds the state: identical schedule and marginals to
  // the stateless call, plus capturing the fixed point for the next slot.
  // The seeded message blob is in the kernel-independent interchange
  // format, so later runs may switch kernels freely.
  BpResult result = use_simd ? RunColdSimd(graph, pot, opts, &state->msg)
                             : RunColdBp(graph, pot, opts, &state->msg);
  state->last_pot = pot;
  state->valid = true;
  return result;
}

BpResult InferMarginalsBp(const PairwiseMrf& mrf, const BpOptions& opts) {
  BpGraph graph = BpGraph::FromMrf(mrf);
  std::vector<double> pot(2 * mrf.num_vars());
  for (size_t v = 0; v < mrf.num_vars(); ++v) {
    pot[2 * v] = mrf.EffectivePotential(v, 0);
    pot[2 * v + 1] = mrf.EffectivePotential(v, 1);
  }
  return InferMarginalsBpFlat(graph, pot, opts);
}

}  // namespace trendspeed
