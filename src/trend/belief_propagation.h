// Loopy belief propagation (damped sum-product) on a PairwiseMrf.
//
// This is the production trend-inference path: linear time per sweep in the
// number of correlation edges, which is what delivers the paper's ~2 orders
// of magnitude efficiency advantage over whole-graph optimization baselines.

#ifndef TRENDSPEED_TREND_BELIEF_PROPAGATION_H_
#define TRENDSPEED_TREND_BELIEF_PROPAGATION_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "trend/factor_graph.h"

namespace trendspeed {

/// Which message-update kernel a run executes (docs/performance.md).
enum class BpKernel {
  /// The original double-precision scalar path. Bitwise identical to the
  /// pre-kernel-knob behaviour on cold runs and the reference oracle the
  /// SIMD kernel is tested against.
  kScalar,
  /// The vectorized structure-of-arrays kernel (trend/bp_kernel.h):
  /// single-precision lockstep batches, AVX2/NEON via util/simd.h with a
  /// portable fallback. Marginals agree with kScalar within a small
  /// multiple of tol but are NOT bitwise equal: the kernel reassociates
  /// the incoming-message products (prefix/suffix cavities), contracts in
  /// float, and max-reduces residuals per lane. Falls back to kScalar at
  /// runtime when the binary or CPU lacks the kernel
  /// (trendspeed_bp_kernel_simd_fallbacks_total counts those).
  kSimd,
  /// kSimd whenever available, else kScalar — the deployment default for
  /// serving configs that prefer throughput over bitwise replays.
  kAuto,
};

const char* BpKernelName(BpKernel kernel);
/// Parses "scalar" / "simd" / "auto"; returns false on anything else.
bool ParseBpKernel(const std::string& name, BpKernel* out);

struct BpOptions {
  /// Truncated BP: on the associative, loopy graphs correlation mining
  /// produces, long message passing saturates marginals (ferromagnetic
  /// drift) without improving decisions — and the per-node evidence already
  /// carries most of the signal. A few sweeps of local refinement are both
  /// faster and empirically at least as accurate; raise this (and pass
  /// damping 0) for exactness on trees.
  uint32_t max_iters = 6;
  /// Fraction of the *old* message retained each update, in [0, 1).
  double damping = 0.15;
  /// Convergence threshold on the max message change.
  double tol = 1e-4;
  /// Warm starts only: a variable joins the initial active set when either
  /// entry of its effective potential moved by more than this since the
  /// last run that refreshed its messages. Below-threshold drift is not
  /// lost — it accumulates in the stored potentials and eventually trips
  /// the threshold, so steady-state error stays bounded by roughly this
  /// value. Must be >= 0 (0 activates on any change).
  double warm_threshold = 1e-4;
  /// Worker threads for the message sweeps (0 = EffectiveThreads). The
  /// update is two-phase (read `msg`, write `next`, swap), so marginals are
  /// bitwise identical for every thread count, including 1; small graphs
  /// run serially regardless (see kMinParallelVars in the .cc).
  uint32_t num_threads = 0;
  /// Message-update kernel. kScalar (default) keeps cold runs bitwise
  /// identical to the pre-knob code; kSimd/kAuto select the vectorized SoA
  /// kernel (tolerance contract above). Warm runs under a SIMD-resolved
  /// kernel keep the scalar active-set schedule while the active set is
  /// sparse and switch to dense vectorized sweeps above the density
  /// crossover (bp_kernel.h kBpWarmDenseCrossover).
  BpKernel kernel = BpKernel::kScalar;
  /// Observability hooks (docs/observability.md): when attached, each run
  /// records the trendspeed_bp_* series (sweeps, message updates,
  /// per-sweep convergence residual, iteration count) and a "bp/infer"
  /// span. Null (default) disables recording at per-iteration branch cost;
  /// results are identical either way. Set by the estimator from
  /// PipelineConfig::observability; both must outlive the inference call.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

struct BpResult {
  /// Marginal P(x_v = up); clamped variables report 0/1 exactly.
  std::vector<double> p_up;
  uint32_t iterations = 0;
  bool converged = false;
  /// True when this run was seeded from a previous fixed point (a BpState
  /// that was valid and size-compatible).
  bool warm = false;
  /// Warm runs: variables whose potential change put them in the initial
  /// active set. Cold runs: num_vars (every variable is swept).
  size_t active_vars = 0;
  /// Directed-edge message updates actually computed (cold: edges x sweeps;
  /// warm: only the active neighbourhoods).
  uint64_t message_updates = 0;
};

struct BpGraphSoa;

/// Flattened, immutable BP message-passing structure. Building it is O(E);
/// callers that infer repeatedly over the same graph (one per time slot)
/// should build once and reuse.
struct BpGraph {
  size_t num_vars = 0;
  std::vector<size_t> off;        ///< num_vars + 1 offsets
  std::vector<uint32_t> rev_slot; ///< reverse directed-edge slot per edge
  std::vector<uint32_t> to;       ///< target variable per directed edge
  std::vector<float> compat;      ///< 4 entries per directed edge
  size_t max_degree = 0;
  /// Degree-bucketed structure-of-arrays mirror for the vectorized kernel
  /// (trend/bp_kernel.h), built alongside the flat arrays when the build
  /// compiles the kernel in (TRENDSPEED_SIMD=ON; null otherwise — SIMD
  /// kernel requests then fall back to scalar). Shared so copies of the
  /// graph stay cheap; the mirror is immutable like the rest.
  std::shared_ptr<const BpGraphSoa> soa;

  static BpGraph FromMrf(const PairwiseMrf& mrf);
};

/// Cross-slot warm-start state: the converged message fixed point of the
/// previous inference run plus the potentials those messages were computed
/// under. Owned by the caller (one per serving session / replay stream) and
/// passed back into InferMarginalsBpFlat; the run updates it in place.
/// Invalidate() whenever slot continuity breaks (session reset,
/// carry-forward, out-of-order rejection) — the next run then executes the
/// full cold schedule and re-seeds the state.
struct BpState {
  std::vector<double> msg;       ///< 2 per directed edge
  std::vector<double> last_pot;  ///< 2 per variable, at last message refresh
  bool valid = false;

  void Invalidate() {
    valid = false;
    msg.clear();
    last_pot.clear();
  }
};

/// Runs damped sum-product over a prebuilt structure. `pot` holds the
/// *effective* node potentials (2 per variable, evidence applied: clamped
/// variables carry a hard 0/1 pair).
BpResult InferMarginalsBpFlat(const BpGraph& graph,
                              const std::vector<double>& pot,
                              const BpOptions& opts = {});

/// Warm-start overload. With a null or invalid `state` the run is the cold
/// schedule above (bitwise-identical marginals) and, when `state` is
/// non-null, seeds it for the next call. With a valid `state` the run seeds
/// messages from the previous fixed point and executes residual-prioritized
/// sweeps over an active set initialized from the variables whose
/// potentials moved beyond BpOptions::warm_threshold, expanding along the
/// graph adjacency wherever a message changes appreciably (a fraction of
/// tol; see the .cc) — adjacent
/// slots that differ only locally touch a fraction of the graph. When the
/// sweep budget lets the cold schedule converge, warm marginals agree with
/// a cold run's to within a few multiples of tol (tests pin 10x); under the
/// truncated production default (max_iters 6) the cold run itself can stop
/// short of the fixed point and the gap grows to roughly the cold run's own
/// remaining convergence error.
BpResult InferMarginalsBpFlat(const BpGraph& graph,
                              const std::vector<double>& pot,
                              const BpOptions& opts, BpState* state);

/// Convenience wrapper: flattens `mrf` and infers. Exact on trees (with
/// enough iterations); empirically accurate on the sparse associative
/// graphs correlation mining produces.
BpResult InferMarginalsBp(const PairwiseMrf& mrf, const BpOptions& opts = {});

}  // namespace trendspeed

#endif  // TRENDSPEED_TREND_BELIEF_PROPAGATION_H_
