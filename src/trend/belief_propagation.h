// Loopy belief propagation (damped sum-product) on a PairwiseMrf.
//
// This is the production trend-inference path: linear time per sweep in the
// number of correlation edges, which is what delivers the paper's ~2 orders
// of magnitude efficiency advantage over whole-graph optimization baselines.

#ifndef TRENDSPEED_TREND_BELIEF_PROPAGATION_H_
#define TRENDSPEED_TREND_BELIEF_PROPAGATION_H_

#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "trend/factor_graph.h"

namespace trendspeed {

struct BpOptions {
  /// Truncated BP: on the associative, loopy graphs correlation mining
  /// produces, long message passing saturates marginals (ferromagnetic
  /// drift) without improving decisions — and the per-node evidence already
  /// carries most of the signal. A few sweeps of local refinement are both
  /// faster and empirically at least as accurate; raise this (and pass
  /// damping 0) for exactness on trees.
  uint32_t max_iters = 6;
  /// Fraction of the *old* message retained each update, in [0, 1).
  double damping = 0.15;
  /// Convergence threshold on the max message change.
  double tol = 1e-4;
  /// Worker threads for the message sweeps (0 = EffectiveThreads). The
  /// update is two-phase (read `msg`, write `next`, swap), so marginals are
  /// bitwise identical for every thread count, including 1; small graphs
  /// run serially regardless (see kMinParallelVars in the .cc).
  uint32_t num_threads = 0;
  /// Observability hooks (docs/observability.md): when attached, each run
  /// records the trendspeed_bp_* series (sweeps, message updates,
  /// per-sweep convergence residual, iteration count) and a "bp/infer"
  /// span. Null (default) disables recording at per-iteration branch cost;
  /// results are identical either way. Set by the estimator from
  /// PipelineConfig::observability; both must outlive the inference call.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

struct BpResult {
  /// Marginal P(x_v = up); clamped variables report 0/1 exactly.
  std::vector<double> p_up;
  uint32_t iterations = 0;
  bool converged = false;
};

/// Flattened, immutable BP message-passing structure. Building it is O(E);
/// callers that infer repeatedly over the same graph (one per time slot)
/// should build once and reuse.
struct BpGraph {
  size_t num_vars = 0;
  std::vector<size_t> off;        ///< num_vars + 1 offsets
  std::vector<uint32_t> rev_slot; ///< reverse directed-edge slot per edge
  std::vector<float> compat;      ///< 4 entries per directed edge
  size_t max_degree = 0;

  static BpGraph FromMrf(const PairwiseMrf& mrf);
};

/// Runs damped sum-product over a prebuilt structure. `pot` holds the
/// *effective* node potentials (2 per variable, evidence applied: clamped
/// variables carry a hard 0/1 pair).
BpResult InferMarginalsBpFlat(const BpGraph& graph,
                              const std::vector<double>& pot,
                              const BpOptions& opts = {});

/// Convenience wrapper: flattens `mrf` and infers. Exact on trees (with
/// enough iterations); empirically accurate on the sparse associative
/// graphs correlation mining produces.
BpResult InferMarginalsBp(const PairwiseMrf& mrf, const BpOptions& opts = {});

}  // namespace trendspeed

#endif  // TRENDSPEED_TREND_BELIEF_PROPAGATION_H_
