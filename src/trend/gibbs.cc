#include "trend/gibbs.h"

namespace trendspeed {

GibbsResult InferMarginalsGibbs(const PairwiseMrf& mrf,
                                const GibbsOptions& opts) {
  size_t n = mrf.num_vars();
  Rng rng(opts.seed);
  std::vector<int> state(n);
  for (size_t v = 0; v < n; ++v) {
    if (mrf.IsClamped(v)) {
      state[v] = mrf.ClampedState(v);
    } else {
      // Initialize from the node prior for faster mixing.
      double p1 = mrf.NodePotential(v, 1);
      double p0 = mrf.NodePotential(v, 0);
      state[v] = rng.NextBool(p1 / (p0 + p1)) ? 1 : 0;
    }
  }

  std::vector<uint32_t> up_count(n, 0);
  auto sweep = [&](bool record) {
    for (size_t v = 0; v < n; ++v) {
      if (!mrf.IsClamped(v)) {
        double w0 = mrf.NodePotential(v, 0);
        double w1 = mrf.NodePotential(v, 1);
        for (const MrfEdge& e : mrf.Neighbors(v)) {
          int xs = state[e.to];
          w0 *= e.compat[0][xs];
          w1 *= e.compat[1][xs];
        }
        state[v] = rng.NextBool(w1 / (w0 + w1)) ? 1 : 0;
      }
      if (record && state[v] == 1) ++up_count[v];
    }
  };

  for (uint32_t s = 0; s < opts.burn_in_sweeps; ++s) sweep(false);
  for (uint32_t s = 0; s < opts.sample_sweeps; ++s) sweep(true);

  GibbsResult result;
  result.total_sweeps = opts.burn_in_sweeps + opts.sample_sweeps;
  result.p_up.resize(n);
  double denom = std::max<uint32_t>(opts.sample_sweeps, 1);
  for (size_t v = 0; v < n; ++v) {
    if (mrf.IsClamped(v)) {
      result.p_up[v] = mrf.ClampedState(v) == 1 ? 1.0 : 0.0;
    } else {
      result.p_up[v] = up_count[v] / denom;
    }
  }
  return result;
}

}  // namespace trendspeed
