#include "trend/trend_model.h"

#include <algorithm>
#include <cmath>

#include "corr/cotrend.h"
#include "util/logging.h"

namespace trendspeed {

const char* TrendEngineName(TrendEngine engine) {
  switch (engine) {
    case TrendEngine::kBeliefPropagation:
      return "bp";
    case TrendEngine::kGibbs:
      return "gibbs";
    case TrendEngine::kIcm:
      return "icm";
    case TrendEngine::kPriorOnly:
      return "prior";
  }
  return "?";
}

namespace {

// Builds the MRF structure with tempered edge compatibilities.
PairwiseMrf BuildStructure(const CorrelationGraph& graph, double power) {
  PairwiseMrf mrf(graph.num_roads());
  for (RoadId v = 0; v < graph.num_roads(); ++v) {
    for (const CorrEdge& e : graph.Neighbors(v)) {
      if (e.neighbor <= v) continue;
      double compat[2][2];
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          compat[a][b] = std::pow(static_cast<double>(e.compat[a][b]), power);
        }
      }
      mrf.AddEdge(v, e.neighbor, compat);
    }
  }
  return mrf;
}

}  // namespace

TrendModel::TrendModel(const CorrelationGraph* graph, const HistoricalDb* db,
                       TrendModelOptions opts)
    : graph_(graph),
      db_(db),
      opts_(opts),
      structure_(BuildStructure(*graph, opts.edge_compat_power)),
      bp_graph_(BpGraph::FromMrf(structure_)) {
  TS_CHECK(graph != nullptr);
  TS_CHECK(db != nullptr);
  TS_CHECK_EQ(graph->num_roads(), db->num_roads());
  TS_CHECK_GT(opts.edge_compat_power, 0.0);
}

Result<TrendEstimate> TrendModel::Infer(
    uint64_t slot, const std::vector<SeedTrend>& seeds,
    const std::vector<double>* evidence_log_odds) const {
  return Infer(slot, seeds, evidence_log_odds, nullptr);
}

Status TrendModel::FillPotentials(uint64_t slot,
                                  const std::vector<SeedTrend>& seeds,
                                  const std::vector<double>* evidence_log_odds,
                                  std::vector<double>* pot,
                                  std::vector<int8_t>* clamped) const {
  size_t n = graph_->num_roads();
  if (evidence_log_odds != nullptr && evidence_log_odds->size() != n) {
    return Status::InvalidArgument("evidence size mismatch");
  }
  // Per-slot node beliefs: historical prior combined with soft evidence,
  // overridden by hard seed clamps.
  clamped->assign(n, -1);
  for (const SeedTrend& s : seeds) {
    if (s.road >= n) {
      return Status::InvalidArgument("seed road out of range");
    }
    if (s.trend != 1 && s.trend != -1) {
      return Status::InvalidArgument("seed trend must be +1 or -1");
    }
    (*clamped)[s.road] = static_cast<int8_t>(TrendIndex(s.trend));
  }
  pot->assign(2 * n, 0.0);
  for (size_t v = 0; v < n; ++v) {
    if ((*clamped)[v] >= 0) {
      (*pot)[2 * v] = (*clamped)[v] == 0 ? 1.0 : 0.0;
      (*pot)[2 * v + 1] = (*clamped)[v] == 1 ? 1.0 : 0.0;
      continue;
    }
    double p = db_->TrendUpProbability(static_cast<RoadId>(v), slot,
                                       opts_.prior_pseudo_count);
    if (evidence_log_odds != nullptr) {
      // Combine prior odds with the evidence log-odds (clamped: a single
      // soft observation should never be near-certain).
      double l = std::clamp((*evidence_log_odds)[v], -4.0, 4.0);
      double odds = p / (1.0 - p) * std::exp(l);
      p = odds / (1.0 + odds);
    }
    p = std::clamp(p, 0.02, 0.98);
    (*pot)[2 * v] = 1.0 - p;
    (*pot)[2 * v + 1] = p;
  }
  return Status::OK();
}

Result<std::vector<double>> TrendModel::BuildPotentials(
    uint64_t slot, const std::vector<SeedTrend>& seeds,
    const std::vector<double>* evidence_log_odds) const {
  std::vector<double> pot;
  std::vector<int8_t> clamped;
  TS_RETURN_NOT_OK(
      FillPotentials(slot, seeds, evidence_log_odds, &pot, &clamped));
  return pot;
}

Result<TrendEstimate> TrendModel::Infer(
    uint64_t slot, const std::vector<SeedTrend>& seeds,
    const std::vector<double>* evidence_log_odds,
    TrendInferenceState* state) const {
  size_t n = graph_->num_roads();
  std::vector<double> pot;
  std::vector<int8_t> clamped;
  TS_RETURN_NOT_OK(
      FillPotentials(slot, seeds, evidence_log_odds, &pot, &clamped));

  TrendEstimate est;
  if (opts_.engine == TrendEngine::kBeliefPropagation) {
    // Fast path: the flattened structure is cached; no MRF copy. The
    // state pointer (when allowed) adds the cross-slot warm start.
    BpState* bp_state =
        (state != nullptr && opts_.warm_start) ? &state->bp : nullptr;
    est.p_up = InferMarginalsBpFlat(bp_graph_, pot, opts_.bp, bp_state).p_up;
  } else if (opts_.engine == TrendEngine::kPriorOnly) {
    est.p_up.resize(n);
    for (size_t v = 0; v < n; ++v) {
      est.p_up[v] = pot[2 * v + 1] / (pot[2 * v] + pot[2 * v + 1]);
    }
  } else {
    // Sampling/MAP engines work on a potential-carrying MRF copy (the
    // structure is shared; only potentials and evidence are duplicated).
    PairwiseMrf mrf = structure_;
    for (size_t v = 0; v < n; ++v) {
      if (clamped[v] >= 0) {
        mrf.Clamp(v, clamped[v]);
      } else {
        mrf.SetNodePotential(v, pot[2 * v], pot[2 * v + 1]);
      }
    }
    if (opts_.engine == TrendEngine::kGibbs) {
      est.p_up = InferMarginalsGibbs(mrf, opts_.gibbs).p_up;
    } else {
      IcmResult icm = InferMapIcm(mrf, opts_.icm);
      est.p_up.resize(n);
      // ICM yields a hard assignment; report soft values nudged off the
      // extremes so downstream blending still hedges a little.
      for (size_t v = 0; v < n; ++v) {
        est.p_up[v] = mrf.IsClamped(v) ? (icm.state[v] == 1 ? 1.0 : 0.0)
                                       : (icm.state[v] == 1 ? 0.9 : 0.1);
      }
    }
  }
  est.trend.resize(n);
  for (size_t v = 0; v < n; ++v) {
    est.trend[v] = est.p_up[v] >= 0.5 ? +1 : -1;
  }
  return est;
}

}  // namespace trendspeed
