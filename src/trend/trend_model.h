// Step 1 of the paper's two-step estimator: infer the traffic trend of every
// road from the observed trends of the crowdsourced seed roads.
//
// The MRF structure is built once from the correlation graph; per time slot
// this model installs the historical trend priors as node potentials, clamps
// the seeds to their observed trends, and runs the selected inference engine.

#ifndef TRENDSPEED_TREND_TREND_MODEL_H_
#define TRENDSPEED_TREND_TREND_MODEL_H_

#include <vector>

#include "corr/correlation_graph.h"
#include "probe/history.h"
#include "trend/belief_propagation.h"
#include "trend/factor_graph.h"
#include "trend/gibbs.h"
#include "trend/icm.h"
#include "util/status.h"

namespace trendspeed {

enum class TrendEngine {
  kBeliefPropagation,
  kGibbs,
  kIcm,
  /// No graph inference: every road keeps its node potential (historical
  /// prior combined with any soft evidence). Ablation baseline isolating
  /// the value of message passing.
  kPriorOnly,
};

const char* TrendEngineName(TrendEngine engine);

struct TrendModelOptions {
  TrendEngine engine = TrendEngine::kBeliefPropagation;
  BpOptions bp;
  GibbsOptions gibbs;
  IcmOptions icm;
  /// Power applied to the mined edge compatibilities (temperature):
  /// 1 = use them as-is; < 1 tempers message passing. When per-node soft
  /// evidence is active, neighbouring nodes carry *redundant* information
  /// (it derives from the same seeds), and full-strength propagation
  /// double-counts it; tempering keeps BP a refinement rather than an
  /// amplifier.
  double edge_compat_power = 0.25;
  /// Pseudo-counts for the historical trend prior.
  double prior_pseudo_count = 3.0;
  /// Cross-slot warm start (BP engine only): when the caller passes a
  /// TrendInferenceState to Infer, seed BP from the previous slot's fixed
  /// point and sweep only the changed neighbourhoods. False forces the
  /// cold schedule even with a state — the escape hatch when bitwise slot
  /// independence matters more than latency. Stateless Infer calls are
  /// always cold regardless.
  bool warm_start = true;
};

/// Caller-owned cross-slot inference state for the stateful Infer overload.
/// One per serving stream; Invalidate() whenever slot continuity breaks.
struct TrendInferenceState {
  BpState bp;
  /// Per-shard warm-start states for the sharded BP engine (see
  /// shard/sharded_bp.h; sized by the engine on first use, unused — and
  /// empty — on the flat path).
  std::vector<BpState> shard;

  void Invalidate() {
    bp.Invalidate();
    for (BpState& s : shard) s.Invalidate();
    shard.clear();
  }
};

/// A seed's crowdsourced observation, reduced to its trend.
struct SeedTrend {
  RoadId road = kInvalidRoad;
  int trend = +1;  ///< +1 up, -1 down
};

/// Trend marginals and hard decisions for every road.
struct TrendEstimate {
  std::vector<double> p_up;  ///< P(trend = up)
  std::vector<int> trend;    ///< hard decision in {+1, -1}
};

class TrendModel {
 public:
  /// The referenced graph and db must outlive the model.
  TrendModel(const CorrelationGraph* graph, const HistoricalDb* db,
             TrendModelOptions opts);

  /// Infers all-road trends at `slot` given seed observations.
  ///
  /// `evidence_log_odds` (optional, per road) is additional soft evidence in
  /// log-odds form — positive pushes toward "up" — typically the calibrated
  /// logistic of the influence-weighted seed deviation. Ignored for clamped
  /// (seed) roads.
  Result<TrendEstimate> Infer(
      uint64_t slot, const std::vector<SeedTrend>& seeds,
      const std::vector<double>* evidence_log_odds = nullptr) const;

  /// Stateful variant: with a non-null `state` (and warm_start enabled, BP
  /// engine selected) the per-slot potential vector is diffed against the
  /// state's and inference warm-starts from the previous fixed point —
  /// steady-state slots touch a fraction of the graph. A null/invalid
  /// state runs the identical cold schedule and seeds the state. Marginals
  /// of a warm run agree with a cold run's within a few multiples of
  /// BpOptions::tol; everything else (engines other than BP included)
  /// behaves exactly like the stateless overload.
  Result<TrendEstimate> Infer(uint64_t slot,
                              const std::vector<SeedTrend>& seeds,
                              const std::vector<double>* evidence_log_odds,
                              TrendInferenceState* state) const;

  /// The per-slot *effective* node potentials (2 per road): historical
  /// prior combined with soft evidence, clamped seeds carrying hard 0/1
  /// pairs — the exact vector the BP engine consumes. Exposed so the
  /// sharded BP path (shard/sharded_bp.h, orchestrated by the estimator)
  /// can distribute the identical potentials across district shards.
  Result<std::vector<double>> BuildPotentials(
      uint64_t slot, const std::vector<SeedTrend>& seeds,
      const std::vector<double>* evidence_log_odds) const;

  /// The cached flattened BP structure (topology identical to the
  /// correlation graph) — what ShardedBpEngine::Build partitions.
  const BpGraph& bp_graph() const { return bp_graph_; }

  const TrendModelOptions& options() const { return opts_; }

 private:
  /// Shared body of BuildPotentials and Infer: fills `pot` and the
  /// per-road clamp marks (-1 free, else state).
  Status FillPotentials(uint64_t slot, const std::vector<SeedTrend>& seeds,
                        const std::vector<double>* evidence_log_odds,
                        std::vector<double>* pot,
                        std::vector<int8_t>* clamped) const;

  const CorrelationGraph* graph_;
  const HistoricalDb* db_;
  TrendModelOptions opts_;
  PairwiseMrf structure_;  // potentials/evidence overwritten per call
  BpGraph bp_graph_;       // flattened structure cached for the BP engine
};

}  // namespace trendspeed

#endif  // TRENDSPEED_TREND_TREND_MODEL_H_
