#include "trend/exact.h"

#include <cmath>

namespace trendspeed {

Result<std::vector<double>> InferMarginalsExact(const PairwiseMrf& mrf) {
  size_t n = mrf.num_vars();
  std::vector<size_t> free_vars;
  for (size_t v = 0; v < n; ++v) {
    if (!mrf.IsClamped(v)) free_vars.push_back(v);
  }
  if (free_vars.size() > kMaxExactVars) {
    return Status::InvalidArgument(
        "exact inference limited to " + std::to_string(kMaxExactVars) +
        " free variables, got " + std::to_string(free_vars.size()));
  }
  std::vector<int> state(n, 0);
  for (size_t v = 0; v < n; ++v) {
    if (mrf.IsClamped(v)) state[v] = mrf.ClampedState(v);
  }
  std::vector<double> up_mass(n, 0.0);
  double total = 0.0;
  uint64_t combos = uint64_t{1} << free_vars.size();
  for (uint64_t mask = 0; mask < combos; ++mask) {
    for (size_t k = 0; k < free_vars.size(); ++k) {
      state[free_vars[k]] = (mask >> k) & 1 ? 1 : 0;
    }
    double w = std::exp(mrf.LogScore(state));
    total += w;
    for (size_t v = 0; v < n; ++v) {
      if (state[v] == 1) up_mass[v] += w;
    }
  }
  std::vector<double> p_up(n, 0.5);
  if (total > 0.0) {
    for (size_t v = 0; v < n; ++v) p_up[v] = up_mass[v] / total;
  }
  return p_up;
}

}  // namespace trendspeed
