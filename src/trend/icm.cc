#include "trend/icm.h"

namespace trendspeed {

IcmResult InferMapIcm(const PairwiseMrf& mrf, const IcmOptions& opts) {
  size_t n = mrf.num_vars();
  IcmResult result;
  result.state.resize(n);
  for (size_t v = 0; v < n; ++v) {
    if (mrf.IsClamped(v)) {
      result.state[v] = mrf.ClampedState(v);
    } else {
      result.state[v] =
          mrf.NodePotential(v, 1) >= mrf.NodePotential(v, 0) ? 1 : 0;
    }
  }
  for (uint32_t s = 0; s < opts.max_sweeps; ++s) {
    bool changed = false;
    for (size_t v = 0; v < n; ++v) {
      if (mrf.IsClamped(v)) continue;
      double w0 = mrf.NodePotential(v, 0);
      double w1 = mrf.NodePotential(v, 1);
      for (const MrfEdge& e : mrf.Neighbors(v)) {
        int xs = result.state[e.to];
        w0 *= e.compat[0][xs];
        w1 *= e.compat[1][xs];
      }
      int best = w1 >= w0 ? 1 : 0;
      if (best != result.state[v]) {
        result.state[v] = best;
        changed = true;
      }
    }
    result.sweeps = s + 1;
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace trendspeed
