// Pairwise binary Markov random field over road trends.
//
// Variables are roads; states are trend indices (0 = down, 1 = up). The
// joint is P(x) proportional to prod_v phi_v(x_v) * prod_(u,v) psi_uv(x_u, x_v).
// Seeds whose trend was observed are clamped (their potential collapses to
// the observed state). The structure (edges) is fixed at construction; node
// potentials and evidence are mutable so one MRF can be reused across time
// slots.

#ifndef TRENDSPEED_TREND_FACTOR_GRAPH_H_
#define TRENDSPEED_TREND_FACTOR_GRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "corr/correlation_graph.h"
#include "util/status.h"

namespace trendspeed {

/// One incident MRF edge as seen from a variable.
struct MrfEdge {
  uint32_t to = 0;
  uint32_t edge_id = 0;  ///< shared id of the undirected edge
  uint32_t rev = 0;      ///< index of the reciprocal edge within adj[to]
  /// psi[self state][other state].
  float compat[2][2] = {{1.f, 1.f}, {1.f, 1.f}};
};

/// Pairwise binary MRF; see file comment.
class PairwiseMrf {
 public:
  explicit PairwiseMrf(size_t num_vars);

  /// Builds structure and compatibilities from a correlation graph. Node
  /// potentials start uniform; callers set per-slot priors before inference.
  static PairwiseMrf FromCorrelationGraph(const CorrelationGraph& graph);

  size_t num_vars() const { return phi_.size() / 2; }
  size_t num_edges() const { return num_edges_; }

  /// Sets phi_v; values must be positive (normalization is not required).
  void SetNodePotential(size_t v, double phi_down, double phi_up);
  /// Sets phi_v from P(up) with clipping away from {0,1}.
  void SetPriorUp(size_t v, double p_up);

  double NodePotential(size_t v, int state) const {
    return phi_[2 * v + static_cast<size_t>(state)];
  }

  /// Adds an undirected edge (stored in both adjacency lists).
  /// compat is psi[x_u][x_v].
  void AddEdge(size_t u, size_t v, const double compat[2][2]);

  const std::vector<MrfEdge>& Neighbors(size_t v) const {
    return (*adj_)[v];
  }

  /// Evidence management.
  void Clamp(size_t v, int state);
  void ClearEvidence();
  bool IsClamped(size_t v) const { return clamped_[v] >= 0; }
  int ClampedState(size_t v) const { return clamped_[v]; }
  size_t num_clamped() const { return num_clamped_; }

  /// Effective node potential after evidence: clamped variables are a hard
  /// indicator of their observed state.
  double EffectivePotential(size_t v, int state) const {
    int c = clamped_[v];
    if (c >= 0) return c == state ? 1.0 : 0.0;
    return NodePotential(v, state);
  }

  /// Unnormalized log-probability of a full assignment (states 0/1).
  double LogScore(const std::vector<int>& states) const;

 private:
  std::vector<float> phi_;  // 2 per variable
  // The edge structure is shared between copies (copying an MRF for
  // per-slot inference only duplicates potentials and evidence). AddEdge
  // therefore requires sole ownership.
  std::shared_ptr<std::vector<std::vector<MrfEdge>>> adj_;
  std::vector<int8_t> clamped_;  // -1 = free, else state
  size_t num_clamped_ = 0;
  size_t num_edges_ = 0;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_TREND_FACTOR_GRAPH_H_
