#include "probe/gps.h"

#include <cmath>

#include "util/logging.h"

namespace trendspeed {

GpsTrace DriveTrip(const RoadNetwork& net, const TripPlan& trip,
                   const std::vector<double>& speeds_kmh,
                   const GpsOptions& opts, double max_duration_s,
                   uint32_t vehicle, Rng* rng) {
  TS_CHECK(rng != nullptr);
  TS_CHECK_EQ(speeds_kmh.size(), net.num_roads());
  TS_CHECK_GT(opts.sample_interval_s, 0.0);
  GpsTrace trace;
  double t = 0.0;           // current time
  double next_sample = 0.0; // time of next fix
  for (RoadId r : trip.roads) {
    const Road& road = net.road(r);
    double v_ms = std::max(speeds_kmh[r], 1.0) / 3.6;
    double travel = road.length_m / v_ms;
    const Node& a = net.node(road.from);
    const Node& b = net.node(road.to);
    // Emit every fix that falls inside this road's traversal window.
    while (next_sample < t + travel) {
      if (next_sample > max_duration_s) return trace;
      double frac = (next_sample - t) / travel;
      GpsPoint p;
      p.x = a.x + frac * (b.x - a.x) + rng->Gaussian(0.0, opts.position_noise_m);
      p.y = a.y + frac * (b.y - a.y) + rng->Gaussian(0.0, opts.position_noise_m);
      p.t_seconds = next_sample;
      p.vehicle = vehicle;
      trace.points.push_back(p);
      trace.true_roads.push_back(r);
      next_sample += opts.sample_interval_s;
    }
    t += travel;
    if (t > max_duration_s) break;
  }
  return trace;
}

}  // namespace trendspeed
