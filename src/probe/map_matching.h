// Map matching: snapping noisy GPS fixes back onto road segments and
// extracting per-road speed observations from the matched sequence.
//
// Matching uses a uniform spatial grid over segment bounding boxes for
// candidate lookup, point-to-segment distance for the geometric score, and a
// heading term (alignment of the movement vector with the directed segment)
// to disambiguate the two directions of a two-way street.

#ifndef TRENDSPEED_PROBE_MAP_MATCHING_H_
#define TRENDSPEED_PROBE_MAP_MATCHING_H_

#include <vector>

#include "probe/gps.h"
#include "roadnet/road_network.h"
#include "util/status.h"

namespace trendspeed {

/// Spatial index over road segments for nearest-segment queries.
class SegmentIndex {
 public:
  /// cell_m controls grid resolution; search_radius_m bounds candidates.
  explicit SegmentIndex(const RoadNetwork* net, double cell_m = 250.0,
                        double search_radius_m = 60.0);

  /// Roads whose segment passes within search_radius of (x, y).
  std::vector<RoadId> Candidates(double x, double y) const;

  /// Distance from point to the closed segment of `road`.
  double DistanceTo(RoadId road, double x, double y) const;

  const RoadNetwork& network() const { return *net_; }
  double search_radius_m() const { return radius_; }

 private:
  size_t CellOf(double x, double y) const;

  const RoadNetwork* net_;
  double cell_;
  double radius_;
  double min_x_, min_y_;
  size_t nx_, ny_;
  std::vector<std::vector<RoadId>> cells_;
};

struct MatchOptions {
  /// Weight of the heading penalty relative to metric distance.
  double heading_weight_m = 25.0;
};

/// Matches each fix of a trace to a road (kInvalidRoad when nothing within
/// the search radius). Uses the previous->current movement vector for the
/// heading term; the first point is matched on distance alone.
std::vector<RoadId> MatchTrace(const SegmentIndex& index,
                               const std::vector<GpsPoint>& points,
                               const MatchOptions& opts = {});

/// One speed observation extracted from a matched trace.
struct SpeedObservation {
  RoadId road = kInvalidRoad;
  double speed_kmh = 0.0;
};

/// Derives speeds from runs of >=2 consecutive fixes matched to the same
/// road: straight-line distance over elapsed time. Implausible speeds
/// (<= 0 or > max_speed_kmh) are discarded.
std::vector<SpeedObservation> ExtractSpeeds(
    const std::vector<GpsPoint>& points, const std::vector<RoadId>& matched,
    double max_speed_kmh = 130.0);

}  // namespace trendspeed

#endif  // TRENDSPEED_PROBE_MAP_MATCHING_H_
