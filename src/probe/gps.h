// GPS point emission along a trip.
//
// A probe vehicle drives a TripPlan at the current true speed of each road,
// emitting a position fix every `sample_interval_s` seconds with isotropic
// Gaussian position noise — the raw material the map matcher has to undo.

#ifndef TRENDSPEED_PROBE_GPS_H_
#define TRENDSPEED_PROBE_GPS_H_

#include <cstdint>
#include <vector>

#include "probe/trips.h"
#include "roadnet/road_network.h"
#include "util/random.h"

namespace trendspeed {

/// One GPS fix.
struct GpsPoint {
  double x = 0.0;
  double y = 0.0;
  double t_seconds = 0.0;  ///< since slot start
  uint32_t vehicle = 0;
};

struct GpsOptions {
  double sample_interval_s = 20.0;
  double position_noise_m = 12.0;
};

/// Emits the fixes produced while driving `trip` with per-road true speeds
/// `speeds_kmh` (indexed by RoadId), starting at t=0, truncated at
/// `max_duration_s`. Also returns, per emitted point, the road the vehicle
/// was actually on (ground truth for map-matching evaluation).
struct GpsTrace {
  std::vector<GpsPoint> points;
  std::vector<RoadId> true_roads;  ///< parallel to points
};

GpsTrace DriveTrip(const RoadNetwork& net, const TripPlan& trip,
                   const std::vector<double>& speeds_kmh,
                   const GpsOptions& opts, double max_duration_s,
                   uint32_t vehicle, Rng* rng);

}  // namespace trendspeed

#endif  // TRENDSPEED_PROBE_GPS_H_
