// HMM map matching (Viterbi decoding), the production-standard algorithm
// (Newson & Krumm style): hidden states are candidate roads per GPS fix;
// emission likelihood decays with point-to-segment distance; transition
// likelihood favours pairs of roads whose on-network travel is consistent
// with the straight-line movement between fixes. Decoding picks the jointly
// most likely road sequence, which rides out individual noisy fixes the
// greedy per-point matcher (map_matching.h) gets wrong.

#ifndef TRENDSPEED_PROBE_HMM_MATCHING_H_
#define TRENDSPEED_PROBE_HMM_MATCHING_H_

#include <vector>

#include "probe/map_matching.h"

namespace trendspeed {

struct HmmMatchOptions {
  /// Emission model: Gaussian over point-to-segment distance (meters).
  double emission_sigma_m = 15.0;
  /// Transition model: exponential over |on-network hop distance * typical
  /// segment length - straight-line distance| (meters).
  double transition_beta_m = 80.0;
  /// Hop radius used when scoring transitions between candidate roads.
  uint32_t max_transition_hops = 4;
  /// Log-probability floor for an impossible transition.
  double min_log_prob = -50.0;
};

/// Matches each fix of a trace to a road via Viterbi decoding over the
/// candidate sets from `index`. Points with no candidate in range break the
/// chain (they match kInvalidRoad and decoding restarts after them).
std::vector<RoadId> MatchTraceHmm(const SegmentIndex& index,
                                  const std::vector<GpsPoint>& points,
                                  const HmmMatchOptions& opts = {});

}  // namespace trendspeed

#endif  // TRENDSPEED_PROBE_HMM_MATCHING_H_
