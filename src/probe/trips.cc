#include "probe/trips.h"

#include "roadnet/shortest_path.h"
#include "util/logging.h"

namespace trendspeed {

TripGenerator::TripGenerator(const RoadNetwork* net,
                             const TripGeneratorOptions& opts)
    : net_(net), opts_(opts), rng_(opts.seed) {
  TS_CHECK(net != nullptr);
  TS_CHECK_GE(net->num_nodes(), 2u);
  size_t h = std::min(opts.num_hotspots, net->num_nodes());
  for (size_t idx : rng_.SampleWithoutReplacement(net->num_nodes(), h)) {
    hotspots_.push_back(static_cast<NodeId>(idx));
  }
}

NodeId TripGenerator::DrawEndpoint() {
  if (!hotspots_.empty() && rng_.NextBool(opts_.hotspot_bias)) {
    return hotspots_[rng_.NextIndex(hotspots_.size())];
  }
  return static_cast<NodeId>(rng_.NextIndex(net_->num_nodes()));
}

Result<TripPlan> TripGenerator::Next() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    NodeId o = DrawEndpoint();
    NodeId d = DrawEndpoint();
    if (o == d) continue;
    auto path = FastestPath(*net_, o, d);
    if (!path.ok()) continue;
    TripPlan plan;
    plan.origin = o;
    plan.destination = d;
    plan.roads = std::move(path).value();
    return plan;
  }
  return Status::NotFound("TripGenerator: no routable OD pair found");
}

}  // namespace trendspeed
