#include "probe/map_matching.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace trendspeed {

namespace {

double PointSegmentDistance(double px, double py, const Node& a,
                            const Node& b) {
  double vx = b.x - a.x;
  double vy = b.y - a.y;
  double len2 = vx * vx + vy * vy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((px - a.x) * vx + (py - a.y) * vy) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  double cx = a.x + t * vx;
  double cy = a.y + t * vy;
  double dx = px - cx;
  double dy = py - cy;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

SegmentIndex::SegmentIndex(const RoadNetwork* net, double cell_m,
                           double search_radius_m)
    : net_(net), cell_(cell_m), radius_(search_radius_m) {
  TS_CHECK(net != nullptr);
  TS_CHECK_GT(cell_m, 0.0);
  min_x_ = min_y_ = 0.0;
  double max_x = 1.0, max_y = 1.0;
  if (net->num_nodes() > 0) {
    min_x_ = max_x = net->node(0).x;
    min_y_ = max_y = net->node(0).y;
    for (NodeId i = 1; i < net->num_nodes(); ++i) {
      const Node& n = net->node(i);
      min_x_ = std::min(min_x_, n.x);
      max_x = std::max(max_x, n.x);
      min_y_ = std::min(min_y_, n.y);
      max_y = std::max(max_y, n.y);
    }
  }
  // Pad by the search radius so off-network fixes land in valid cells.
  min_x_ -= radius_;
  min_y_ -= radius_;
  max_x += radius_;
  max_y += radius_;
  nx_ = static_cast<size_t>((max_x - min_x_) / cell_) + 1;
  ny_ = static_cast<size_t>((max_y - min_y_) / cell_) + 1;
  cells_.resize(nx_ * ny_);
  for (RoadId r = 0; r < net->num_roads(); ++r) {
    const Road& road = net->road(r);
    const Node& a = net->node(road.from);
    const Node& b = net->node(road.to);
    double lo_x = std::min(a.x, b.x) - radius_;
    double hi_x = std::max(a.x, b.x) + radius_;
    double lo_y = std::min(a.y, b.y) - radius_;
    double hi_y = std::max(a.y, b.y) + radius_;
    size_t cx0 = static_cast<size_t>(std::max(0.0, (lo_x - min_x_) / cell_));
    size_t cx1 = std::min(nx_ - 1,
                          static_cast<size_t>(std::max(0.0, (hi_x - min_x_) / cell_)));
    size_t cy0 = static_cast<size_t>(std::max(0.0, (lo_y - min_y_) / cell_));
    size_t cy1 = std::min(ny_ - 1,
                          static_cast<size_t>(std::max(0.0, (hi_y - min_y_) / cell_)));
    for (size_t cy = cy0; cy <= cy1; ++cy) {
      for (size_t cx = cx0; cx <= cx1; ++cx) {
        cells_[cy * nx_ + cx].push_back(r);
      }
    }
  }
}

size_t SegmentIndex::CellOf(double x, double y) const {
  double fx = (x - min_x_) / cell_;
  double fy = (y - min_y_) / cell_;
  size_t cx = fx <= 0.0 ? 0 : std::min(nx_ - 1, static_cast<size_t>(fx));
  size_t cy = fy <= 0.0 ? 0 : std::min(ny_ - 1, static_cast<size_t>(fy));
  return cy * nx_ + cx;
}

std::vector<RoadId> SegmentIndex::Candidates(double x, double y) const {
  std::vector<RoadId> out;
  for (RoadId r : cells_[CellOf(x, y)]) {
    if (DistanceTo(r, x, y) <= radius_) out.push_back(r);
  }
  return out;
}

double SegmentIndex::DistanceTo(RoadId road, double x, double y) const {
  const Road& r = net_->road(road);
  return PointSegmentDistance(x, y, net_->node(r.from), net_->node(r.to));
}

std::vector<RoadId> MatchTrace(const SegmentIndex& index,
                               const std::vector<GpsPoint>& points,
                               const MatchOptions& opts) {
  const RoadNetwork& net = index.network();
  std::vector<RoadId> matched(points.size(), kInvalidRoad);
  for (size_t i = 0; i < points.size(); ++i) {
    const GpsPoint& p = points[i];
    double mvx = 0.0, mvy = 0.0;
    bool has_heading = false;
    if (i > 0) {
      mvx = p.x - points[i - 1].x;
      mvy = p.y - points[i - 1].y;
      double norm = std::sqrt(mvx * mvx + mvy * mvy);
      if (norm > 1e-6) {
        mvx /= norm;
        mvy /= norm;
        has_heading = true;
      }
    }
    double best_score = 1e300;
    RoadId best = kInvalidRoad;
    for (RoadId cand : index.Candidates(p.x, p.y)) {
      double score = index.DistanceTo(cand, p.x, p.y);
      if (has_heading) {
        const Road& road = net.road(cand);
        const Node& a = net.node(road.from);
        const Node& b = net.node(road.to);
        double rx = b.x - a.x;
        double ry = b.y - a.y;
        double rn = std::sqrt(rx * rx + ry * ry);
        if (rn > 1e-6) {
          double cosine = (mvx * rx + mvy * ry) / rn;
          // cosine 1 -> no penalty; -1 (driving against the segment
          // direction, i.e. the reverse twin) -> full penalty.
          score += opts.heading_weight_m * (1.0 - cosine);
        }
      }
      if (score < best_score) {
        best_score = score;
        best = cand;
      }
    }
    matched[i] = best;
  }
  return matched;
}

std::vector<SpeedObservation> ExtractSpeeds(
    const std::vector<GpsPoint>& points, const std::vector<RoadId>& matched,
    double max_speed_kmh) {
  TS_CHECK_EQ(points.size(), matched.size());
  std::vector<SpeedObservation> out;
  size_t i = 0;
  while (i < points.size()) {
    RoadId r = matched[i];
    size_t j = i + 1;
    while (j < points.size() && matched[j] == r) ++j;
    if (r != kInvalidRoad && j - i >= 2) {
      double dist = 0.0;
      for (size_t k = i + 1; k < j; ++k) {
        double dx = points[k].x - points[k - 1].x;
        double dy = points[k].y - points[k - 1].y;
        dist += std::sqrt(dx * dx + dy * dy);
      }
      double dt = points[j - 1].t_seconds - points[i].t_seconds;
      if (dt > 0.0) {
        double kmh = dist / dt * 3.6;
        if (kmh > 0.0 && kmh <= max_speed_kmh) {
          out.push_back(SpeedObservation{r, kmh});
        }
      }
    }
    i = j;
  }
  return out;
}

}  // namespace trendspeed
