#include "probe/history.h"

#include <cmath>

#include "probe/hmm_matching.h"
#include "util/logging.h"
#include "util/stats.h"

namespace trendspeed {

namespace {
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
}  // namespace

HistoricalDb::Builder::Builder(size_t num_roads, uint64_t num_slots,
                               uint32_t slots_per_day)
    : num_roads_(num_roads),
      num_slots_(num_slots),
      slots_per_day_(slots_per_day),
      sum_(num_roads * num_slots, 0.0f),
      count_(num_roads * num_slots, 0) {
  TS_CHECK_GT(num_roads, 0u);
  TS_CHECK_GT(num_slots, 0u);
  TS_CHECK_GT(slots_per_day, 0u);
}

void HistoricalDb::Builder::Add(RoadId road, uint64_t slot, double speed_kmh) {
  TS_CHECK_LT(road, num_roads_);
  TS_CHECK_LT(slot, num_slots_);
  TS_CHECK_GT(speed_kmh, 0.0);
  size_t idx = static_cast<size_t>(road) * num_slots_ + slot;
  // Once the counter saturates the cell mean freezes: accumulating into
  // sum_ without advancing count_ would inflate the mean of heavily
  // observed cells.
  if (count_[idx] == UINT16_MAX) return;
  sum_[idx] += static_cast<float>(speed_kmh);
  ++count_[idx];
}

HistoricalDb HistoricalDb::Builder::Finish() {
  HistoricalDb db;
  db.num_roads_ = num_roads_;
  db.num_slots_ = num_slots_;
  db.clock_ = SlotClock{slots_per_day_};
  db.obs_.assign(num_roads_ * num_slots_, kNan);
  size_t num_buckets = num_roads_ * 2 * slots_per_day_;
  db.bucket_mean_.assign(num_buckets, 0.0f);
  db.bucket_count_.assign(num_buckets, 0);
  db.bucket_up_.assign(num_buckets, 0);
  db.road_mean_.assign(num_roads_, 0.0f);
  db.road_count_.assign(num_roads_, 0);
  db.dev_stddev_.assign(num_roads_, 0.0f);

  // Pass 1: cell means, bucket sums, road sums.
  std::vector<double> bucket_sum(num_buckets, 0.0);
  std::vector<double> road_sum(num_roads_, 0.0);
  for (RoadId road = 0; road < num_roads_; ++road) {
    for (uint64_t slot = 0; slot < num_slots_; ++slot) {
      size_t idx = static_cast<size_t>(road) * num_slots_ + slot;
      if (count_[idx] == 0) continue;
      float mean = sum_[idx] / static_cast<float>(count_[idx]);
      db.obs_[idx] = mean;
      size_t b = db.BucketIdx(road, slot);
      bucket_sum[b] += mean;
      if (db.bucket_count_[b] < UINT16_MAX) ++db.bucket_count_[b];
      road_sum[road] += mean;
      ++db.road_count_[road];
      ++db.total_obs_;
    }
  }
  for (size_t b = 0; b < num_buckets; ++b) {
    if (db.bucket_count_[b] > 0) {
      db.bucket_mean_[b] =
          static_cast<float>(bucket_sum[b] / db.bucket_count_[b]);
    }
  }
  for (RoadId road = 0; road < num_roads_; ++road) {
    if (db.road_count_[road] > 0) {
      db.road_mean_[road] =
          static_cast<float>(road_sum[road] / db.road_count_[road]);
    }
  }
  // Pass 2: trend-up counts and deviation variability (need means first).
  for (RoadId road = 0; road < num_roads_; ++road) {
    OnlineStats dev;
    for (uint64_t slot = 0; slot < num_slots_; ++slot) {
      size_t idx = static_cast<size_t>(road) * num_slots_ + slot;
      if (std::isnan(db.obs_[idx])) continue;
      double mean = db.HistoricalMeanOr(road, slot, db.obs_[idx]);
      if (db.obs_[idx] >= mean) {
        size_t b = db.BucketIdx(road, slot);
        if (db.bucket_up_[b] < UINT16_MAX) ++db.bucket_up_[b];
      }
      if (mean > 0.0) dev.Add(db.obs_[idx] / mean - 1.0);
    }
    db.dev_stddev_[road] = static_cast<float>(dev.stddev());
  }
  // Release builder storage.
  sum_.clear();
  sum_.shrink_to_fit();
  count_.clear();
  count_.shrink_to_fit();
  return db;
}

double HistoricalDb::HistoricalMeanOr(RoadId road, uint64_t slot,
                                      double fallback) const {
  size_t b = BucketIdx(road, slot);
  // Require a few samples before trusting a bucket mean; a single noisy
  // probe record should not define "normal".
  if (bucket_count_[b] >= 3) return bucket_mean_[b];
  if (road_count_[road] > 0) return road_mean_[road];
  return fallback;
}

double HistoricalDb::DeviationOf(RoadId road, uint64_t slot,
                                 double speed) const {
  double mean = HistoricalMeanOr(road, slot, 0.0);
  if (mean <= 0.0) return 0.0;
  return speed / mean - 1.0;
}

double HistoricalDb::TrendUpProbability(RoadId road, uint64_t slot,
                                        double pseudo) const {
  TS_CHECK_GE(pseudo, 0.0);
  size_t b = BucketIdx(road, slot);
  double denom = static_cast<double>(bucket_count_[b]) + 2.0 * pseudo;
  // Empty bucket and no smoothing: 0/0. The uninformed prior is 0.5.
  if (denom <= 0.0) return 0.5;
  return (static_cast<double>(bucket_up_[b]) + pseudo) / denom;
}

double HistoricalDb::CoverageFraction() const {
  return static_cast<double>(total_obs_) /
         (static_cast<double>(num_roads_) * static_cast<double>(num_slots_));
}

double HistoricalDb::UnobservedRoadFraction() const {
  size_t zero = 0;
  for (uint32_t c : road_count_) {
    if (c == 0) ++zero;
  }
  return static_cast<double>(zero) / static_cast<double>(num_roads_);
}

Result<HistoricalDb> CollectProbeHistory(const RoadNetwork& net,
                                         const SpeedField& field,
                                         const ProbeFleetOptions& opts) {
  if (field.num_roads() != net.num_roads()) {
    return Status::InvalidArgument("speed field / network road mismatch");
  }
  if (field.num_slots() == 0) {
    return Status::InvalidArgument("empty speed field");
  }
  HistoricalDb::Builder builder(net.num_roads(), field.num_slots(),
                                field.slots_per_day);
  TripGenerator trips(&net, opts.trips);
  SegmentIndex index(&net);
  Rng rng(opts.seed);
  double slot_seconds = 86400.0 / field.slots_per_day;
  uint32_t vehicle = 0;
  for (uint64_t slot = 0; slot < field.num_slots(); ++slot) {
    const std::vector<double>& speeds = field.speeds[slot];
    for (uint32_t t = 0; t < opts.trips_per_slot; ++t) {
      auto plan = trips.Next();
      if (!plan.ok()) continue;  // disconnected pocket; skip this trip
      GpsTrace trace = DriveTrip(net, *plan, speeds, opts.gps, slot_seconds,
                                 vehicle++, &rng);
      if (trace.points.size() < 2) continue;
      std::vector<RoadId> matched =
          opts.use_hmm_matching
              ? MatchTraceHmm(index, trace.points)
              : MatchTrace(index, trace.points, opts.match);
      for (const SpeedObservation& obs :
           ExtractSpeeds(trace.points, matched)) {
        builder.Add(obs.road, slot, obs.speed_kmh);
      }
    }
  }
  return builder.Finish();
}

Result<HistoricalDb> CollectIdealizedHistory(const RoadNetwork& net,
                                             const SpeedField& field,
                                             double coverage_prob,
                                             double noise_kmh, uint64_t seed) {
  if (field.num_roads() != net.num_roads()) {
    return Status::InvalidArgument("speed field / network road mismatch");
  }
  if (coverage_prob <= 0.0 || coverage_prob > 1.0) {
    return Status::InvalidArgument("coverage_prob must be in (0, 1]");
  }
  HistoricalDb::Builder builder(net.num_roads(), field.num_slots(),
                                field.slots_per_day);
  Rng rng(seed);
  // Skewed per-road coverage: popular roads get ~3x the average, a tail of
  // roads is almost never observed (mirrors taxi coverage skew).
  std::vector<double> road_cov(net.num_roads());
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    double skew = rng.NextExponential(1.0);
    road_cov[r] = std::min(1.0, coverage_prob * skew);
  }
  for (uint64_t slot = 0; slot < field.num_slots(); ++slot) {
    for (RoadId r = 0; r < net.num_roads(); ++r) {
      if (!rng.NextBool(road_cov[r])) continue;
      double v = field.at(slot, r) + rng.Gaussian(0.0, noise_kmh);
      if (v > 0.5) builder.Add(r, slot, v);
    }
  }
  return builder.Finish();
}

}  // namespace trendspeed
