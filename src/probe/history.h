// Historical speed database built from probe observations.
//
// Stores (a) a dense per-(road, slot) observed-mean matrix with missing
// entries, and (b) the aggregates the inference stack consumes: historical
// mean speed per (road, slot-of-day, weekend-bucket), per-road deviation
// variability, trend-up priors, and coverage statistics.
//
// "Trend" throughout the library: T = +1 when the speed is at or above the
// road's historical mean for that time bucket, -1 when below.

#ifndef TRENDSPEED_PROBE_HISTORY_H_
#define TRENDSPEED_PROBE_HISTORY_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "probe/gps.h"
#include "probe/map_matching.h"
#include "probe/trips.h"
#include "roadnet/road_network.h"
#include "traffic/simulator.h"
#include "util/status.h"

namespace trendspeed {

/// Aggregated, query-optimized historical speed store. Default-constructed
/// instances are empty and only useful as assignment targets.
class HistoricalDb {
 public:
  HistoricalDb() = default;
  /// Accumulates raw speed records, then freezes into a HistoricalDb.
  class Builder {
   public:
    Builder(size_t num_roads, uint64_t num_slots, uint32_t slots_per_day);

    /// Adds one observation; multiple observations of the same (road, slot)
    /// are averaged. A cell's mean freezes after 65535 observations (further
    /// adds are ignored rather than biasing the mean).
    void Add(RoadId road, uint64_t slot, double speed_kmh);

    HistoricalDb Finish();

   private:
    size_t num_roads_;
    uint64_t num_slots_;
    uint32_t slots_per_day_;
    std::vector<float> sum_;
    std::vector<uint16_t> count_;
  };

  size_t num_roads() const { return num_roads_; }
  uint64_t num_slots() const { return num_slots_; }
  uint32_t slots_per_day() const { return clock_.slots_per_day; }
  const SlotClock& clock() const { return clock_; }

  /// True when (road, slot) has at least one observation.
  bool HasObservation(RoadId road, uint64_t slot) const {
    return !std::isnan(obs_[Idx(road, slot)]);
  }
  /// Mean observed speed at (road, slot). Precondition: HasObservation.
  double Observation(RoadId road, uint64_t slot) const {
    return obs_[Idx(road, slot)];
  }

  /// Historical mean for the bucket (slot-of-day x weekday/weekend) of
  /// `slot`, falling back to the road's overall mean, then to `fallback`.
  double HistoricalMeanOr(RoadId road, uint64_t slot, double fallback) const;

  /// True when the road has any bucket- or road-level history.
  bool HasHistory(RoadId road) const { return road_count_[road] > 0; }

  /// Trend of `speed` at (road, slot): +1 at/above the historical mean,
  /// -1 below. Uses `fallback` as the mean when no history exists.
  int TrendOf(RoadId road, uint64_t slot, double speed,
              double fallback) const {
    return speed >= HistoricalMeanOr(road, slot, fallback) ? +1 : -1;
  }

  /// Relative deviation (speed / historical mean - 1); 0 when no history.
  double DeviationOf(RoadId road, uint64_t slot, double speed) const;

  /// Empirical P(T = +1) for the bucket of `slot`, smoothed toward 0.5 with
  /// `pseudo` pseudo-counts per side (buckets hold few samples; a weak prior
  /// must not overpower real-time evidence). `pseudo` must be >= 0; an empty
  /// bucket with pseudo = 0 returns the uninformed prior 0.5.
  double TrendUpProbability(RoadId road, uint64_t slot,
                            double pseudo = 3.0) const;

  /// Standard deviation of the road's relative deviation across observed
  /// slots — the "variability" weight used by seed selection.
  double DeviationStddev(RoadId road) const { return dev_stddev_[road]; }

  /// Number of observed slots for the road.
  uint32_t CoverageCount(RoadId road) const { return road_count_[road]; }

  /// Fraction of (road, slot) cells observed.
  double CoverageFraction() const;

  /// Fraction of roads with zero observations.
  double UnobservedRoadFraction() const;

  /// Total observed (road, slot) cells.
  uint64_t TotalObservations() const { return total_obs_; }

 private:
  friend class Builder;

  size_t Idx(RoadId road, uint64_t slot) const {
    return static_cast<size_t>(road) * num_slots_ + slot;
  }
  /// Bucket id: slot_of_day for weekdays, slots_per_day + slot_of_day for
  /// weekends.
  size_t BucketOf(uint64_t slot) const {
    return (clock_.IsWeekend(slot) ? clock_.slots_per_day : 0u) +
           clock_.SlotOfDay(slot);
  }
  size_t BucketIdx(RoadId road, uint64_t slot) const {
    return static_cast<size_t>(road) * 2 * clock_.slots_per_day +
           BucketOf(slot);
  }

  size_t num_roads_ = 0;
  uint64_t num_slots_ = 0;
  SlotClock clock_;
  std::vector<float> obs_;  // NaN = missing; road-major
  // Per (road, bucket): mean speed, observation count, up-trend count.
  std::vector<float> bucket_mean_;
  std::vector<uint16_t> bucket_count_;
  std::vector<uint16_t> bucket_up_;
  // Per road: overall mean, observation count, deviation stddev.
  std::vector<float> road_mean_;
  std::vector<uint32_t> road_count_;
  std::vector<float> dev_stddev_;
  uint64_t total_obs_ = 0;
};

/// Configuration of the probe fleet used to populate a HistoricalDb.
struct ProbeFleetOptions {
  /// Trips launched per time slot.
  uint32_t trips_per_slot = 20;
  TripGeneratorOptions trips;
  GpsOptions gps;
  MatchOptions match;
  /// Use the HMM (Viterbi) matcher instead of the greedy heading-aware one.
  /// More accurate under heavy GPS noise, ~1 order of magnitude slower.
  bool use_hmm_matching = false;
  uint64_t seed = 1234;
};

/// Drives the fleet over every slot of `field`, map-matches the traces, and
/// aggregates the extracted speeds. This is the full data-wrangling path the
/// paper performs on raw taxi GPS (noisy fixes -> matched roads -> per-road
/// speed records -> aggregated history).
Result<HistoricalDb> CollectProbeHistory(const RoadNetwork& net,
                                         const SpeedField& field,
                                         const ProbeFleetOptions& opts);

/// Shortcut used by large-scale benchmarks: builds the history directly from
/// ground truth with per-cell subsampling and observation noise, skipping the
/// GPS/map-matching layer (identical statistical shape, much faster).
Result<HistoricalDb> CollectIdealizedHistory(const RoadNetwork& net,
                                             const SpeedField& field,
                                             double coverage_prob,
                                             double noise_kmh, uint64_t seed);

}  // namespace trendspeed

#endif  // TRENDSPEED_PROBE_HISTORY_H_
