#include "probe/hmm_matching.h"

#include <algorithm>
#include <cmath>

#include "roadnet/shortest_path.h"
#include "util/logging.h"

namespace trendspeed {

namespace {

struct Candidate {
  RoadId road = kInvalidRoad;
  double emission_log = 0.0;
  double best_log = -1e300;  // best path log-prob ending here
  int back = -1;             // index into the previous step's candidates
};

}  // namespace

std::vector<RoadId> MatchTraceHmm(const SegmentIndex& index,
                                  const std::vector<GpsPoint>& points,
                                  const HmmMatchOptions& opts) {
  const RoadNetwork& net = index.network();
  std::vector<RoadId> matched(points.size(), kInvalidRoad);
  if (points.empty()) return matched;

  // Candidate lattice.
  std::vector<std::vector<Candidate>> lattice(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    for (RoadId r : index.Candidates(points[i].x, points[i].y)) {
      Candidate c;
      c.road = r;
      double d = index.DistanceTo(r, points[i].x, points[i].y);
      double z = d / opts.emission_sigma_m;
      c.emission_log = -0.5 * z * z;
      lattice[i].push_back(c);
    }
  }

  // Viterbi with restart after empty candidate sets. Transitions are scored
  // with hop distances from each previous candidate (one bounded BFS per
  // previous candidate per step).
  size_t chain_start = 0;
  auto decode_chain = [&](size_t begin, size_t end) {
    if (begin >= end) return;
    for (Candidate& c : lattice[begin]) c.best_log = c.emission_log;
    for (size_t i = begin + 1; i < end; ++i) {
      double dx = points[i].x - points[i - 1].x;
      double dy = points[i].y - points[i - 1].y;
      double straight = std::sqrt(dx * dx + dy * dy);
      for (size_t pj = 0; pj < lattice[i - 1].size(); ++pj) {
        const Candidate& prev = lattice[i - 1][pj];
        std::vector<uint32_t> hops =
            RoadHopDistances(net, prev.road, opts.max_transition_hops);
        double avg_len = std::max(30.0, net.road(prev.road).length_m);
        for (Candidate& cur : lattice[i]) {
          double trans_log;
          if (hops[cur.road] == kUnreachable) {
            trans_log = opts.min_log_prob;
          } else {
            // Network travel approximated by hops * typical segment length;
            // penalize disagreement with the straight-line movement.
            double network = static_cast<double>(hops[cur.road]) * avg_len;
            trans_log =
                -std::fabs(network - straight) / opts.transition_beta_m;
          }
          double score = prev.best_log + trans_log + cur.emission_log;
          if (score > cur.best_log) {
            cur.best_log = score;
            cur.back = static_cast<int>(pj);
          }
        }
      }
      // Dead lattice layer (all -inf): restart the chain here.
      bool alive = false;
      for (const Candidate& c : lattice[i]) {
        if (c.best_log > -1e299) alive = true;
      }
      if (!alive) {
        for (Candidate& c : lattice[i]) {
          c.best_log = c.emission_log;
          c.back = -1;
        }
      }
    }
    // Backtrack from the best terminal candidate.
    size_t i = end - 1;
    int best = -1;
    double best_log = -1e300;
    for (size_t k = 0; k < lattice[i].size(); ++k) {
      if (lattice[i][k].best_log > best_log) {
        best_log = lattice[i][k].best_log;
        best = static_cast<int>(k);
      }
    }
    while (best >= 0) {
      matched[i] = lattice[i][static_cast<size_t>(best)].road;
      best = lattice[i][static_cast<size_t>(best)].back;
      if (i == begin) break;
      --i;
    }
    // Points before a mid-chain restart are not reached by the backtrack;
    // give them their best emission candidate.
    for (size_t k = begin; k < end; ++k) {
      if (matched[k] != kInvalidRoad || lattice[k].empty()) continue;
      size_t arg = 0;
      for (size_t c = 1; c < lattice[k].size(); ++c) {
        if (lattice[k][c].emission_log > lattice[k][arg].emission_log) {
          arg = c;
        }
      }
      matched[k] = lattice[k][arg].road;
    }
  };

  for (size_t i = 0; i <= points.size(); ++i) {
    bool boundary = i == points.size() || lattice[i].empty();
    if (boundary) {
      decode_chain(chain_start, i);
      chain_start = i + 1;
    }
  }
  return matched;
}

}  // namespace trendspeed
