// Probe-vehicle trip planning.
//
// The crowdsourced fleet (the stand-in for the paper's taxis) drives trips
// between random origin/destination intersections along fastest paths. Trip
// endpoints are biased toward a set of "hotspot" nodes so probe coverage is
// skewed, as real taxi coverage is: some roads are observed constantly,
// others almost never — the sparsity that motivates seed-based inference.

#ifndef TRENDSPEED_PROBE_TRIPS_H_
#define TRENDSPEED_PROBE_TRIPS_H_

#include <vector>

#include "roadnet/road_network.h"
#include "util/random.h"
#include "util/status.h"

namespace trendspeed {

/// A planned trip: the road sequence to drive.
struct TripPlan {
  NodeId origin = kInvalidNode;
  NodeId destination = kInvalidNode;
  std::vector<RoadId> roads;
};

struct TripGeneratorOptions {
  /// Number of hotspot nodes; 0 disables skew (uniform OD).
  size_t num_hotspots = 8;
  /// Probability that a trip endpoint is drawn from the hotspot set.
  double hotspot_bias = 0.6;
  uint64_t seed = 97;
};

/// Draws OD pairs and routes them.
class TripGenerator {
 public:
  TripGenerator(const RoadNetwork* net, const TripGeneratorOptions& opts);

  /// Plans one trip; retries internally when an OD pair is disconnected.
  /// Fails only if no routable pair is found after many attempts.
  Result<TripPlan> Next();

  const std::vector<NodeId>& hotspots() const { return hotspots_; }

 private:
  NodeId DrawEndpoint();

  const RoadNetwork* net_;
  TripGeneratorOptions opts_;
  Rng rng_;
  std::vector<NodeId> hotspots_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_PROBE_TRIPS_H_
