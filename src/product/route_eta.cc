#include "product/route_eta.h"

#include "obs/catalog.h"

namespace trendspeed {

RouteEtaCache::RouteEtaCache(const RoadNetwork& net,
                             const ProductOptions& opts,
                             const SpeedProfileStore* profile)
    : net_(&net),
      profile_(profile),
      capacity_(opts.eta_cache_capacity),
      num_nodes_(net.num_nodes()) {
  entries_.reserve(capacity_);
}

Result<RouteEtaCache> RouteEtaCache::Create(const RoadNetwork& net,
                                            const ProductOptions& opts,
                                            const SpeedProfileStore* profile) {
  if (net.num_nodes() == 0) {
    return Status::InvalidArgument("ETA cache needs a non-empty network");
  }
  if (opts.eta_cache_capacity == 0) {
    return Status::InvalidArgument("eta_cache_capacity must be positive");
  }
  if (profile != nullptr && profile->num_roads() != net.num_roads()) {
    return Status::InvalidArgument(
        "profile store covers " + std::to_string(profile->num_roads()) +
        " roads but the network has " + std::to_string(net.num_roads()));
  }
  return RouteEtaCache(net, opts, profile);
}

void RouteEtaCache::AttachMetrics(obs::MetricsRegistry* registry) {
  m_hits_ = obs::GetCounter(registry, obs::kProductEtaCacheHitsTotal);
  m_misses_ = obs::GetCounter(registry, obs::kProductEtaCacheMissesTotal);
  m_invalidations_ =
      obs::GetCounter(registry, obs::kProductEtaCacheInvalidationsTotal);
  m_blends_ = obs::GetCounter(registry, obs::kProductBlendActivationsTotal);
}

void RouteEtaCache::SyncToSnapshot(const SpeedSnapshot& snap) {
  // stale_slots participates in the identity: a carry-forward re-publish
  // bumps the version, but even under the same version a field whose blend
  // weight changed must be re-priced.
  if (snap.version == synced_version_ &&
      snap.stale_slots == synced_stale_slots_) {
    return;
  }
  const size_t dropped = entries_.size();
  entries_.clear();
  stats_.invalidations += dropped;
  obs::Add(m_invalidations_, dropped);

  if (!snap.stale || profile_ == nullptr) {
    pricing_speeds_ = snap.speed_kmh;
    field_provenance_ = snap.stale ? SpeedProvenance::kCarriedForward
                                   : SpeedProvenance::kFresh;
  } else {
    size_t blended = 0;
    field_provenance_ = profile_->BlendSnapshot(snap, &pricing_speeds_,
                                                &blended);
    if (field_provenance_ == SpeedProvenance::kProfileBlend) {
      stats_.blends += 1;
      obs::Add(m_blends_);
    }
  }
  synced_version_ = snap.version;
  synced_stale_slots_ = snap.stale_slots;
}

Result<RouteEtaCache::EtaResult> RouteEtaCache::Eta(const SpeedSnapshot& snap,
                                                    NodeId from, NodeId to) {
  if (snap.version == 0 || snap.speed_kmh.size() != net_->num_roads()) {
    return Status::FailedPrecondition(
        "ETA query against an empty or mismatched snapshot");
  }
  if (from >= num_nodes_ || to >= num_nodes_) {
    return Status::InvalidArgument("route endpoint outside the network");
  }
  SyncToSnapshot(snap);

  const uint64_t key = KeyOf(from, to);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    obs::Add(m_hits_);
    EtaResult hit = it->second.result;
    hit.cache_hit = true;
    return hit;
  }

  ++stats_.misses;
  obs::Add(m_misses_);
  TS_ASSIGN_OR_RETURN(RouteResult route,
                      FastestRoute(*net_, pricing_speeds_, from, to));
  // The pricing field came from the snapshot, so the staleness stamp does
  // too — a blended route is still a stale route, just a better-priced one.
  route.stale = snap.stale;
  route.stale_slots = snap.stale_slots;
  route.slot = snap.slot;

  EtaResult result;
  result.route = std::move(route);
  result.provenance = field_provenance_;
  result.snapshot_version = snap.version;
  result.cache_hit = false;

  if (entries_.size() >= capacity_) {
    // Arbitrary-victim eviction: every entry is equally valid (same
    // version), so any victim preserves correctness; begin() is O(1).
    entries_.erase(entries_.begin());
  }
  entries_.emplace(key, Entry{result});
  return result;
}

}  // namespace trendspeed
