// Route-ETA cache: memoized FastestRoute answers over the latest published
// snapshot, invalidated by snapshot version.
//
// The serving loop publishes one speed field per slot; between publishes the
// field is immutable, so every (from, to) query against the same
// `SpeedSnapshot::version` has exactly one answer. The cache exploits that:
// a hit returns the stored result without touching Dijkstra, a miss runs
// FastestRoute once and stores it, and the moment the version moves on every
// stored entry is dead (checked lazily per entry — no publish-side hook, so
// the writer never knows the cache exists).
//
// Correctness contract (tests/product_test.cc pins both):
//   * cached answers are bitwise-equal to an uncached FastestRoute against
//     the same snapshot — the cache may never change a route;
//   * a stale snapshot can never produce an unflagged ETA: provenance
//     (fresh | carried_forward | profile_blend) rides on every result.
//
// With a SpeedProfileStore attached, stale-snapshot queries are priced on
// the profile-blended speed field instead of the raw carry-forward (the
// blended field is rebuilt once per (version, staleness) and reused until
// the version moves).

#ifndef TRENDSPEED_PRODUCT_ROUTE_ETA_H_
#define TRENDSPEED_PRODUCT_ROUTE_ETA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/routing.h"
#include "core/serving.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "product/profile.h"
#include "roadnet/road_network.h"
#include "util/status.h"

namespace trendspeed {

class RouteEtaCache {
 public:
  /// One answered ETA query.
  struct EtaResult {
    RouteResult route;  ///< roads, travel_seconds, length_m + staleness stamp
    /// Provenance of the speed field that priced the route.
    SpeedProvenance provenance = SpeedProvenance::kFresh;
    /// Snapshot identity the answer is valid for.
    uint64_t snapshot_version = 0;
    bool cache_hit = false;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    uint64_t blends = 0;  ///< queries priced on a profile-blended field
  };

  /// `net` must outlive the cache. `profile` is optional (null = no blend;
  /// stale snapshots then serve carried-forward) and must outlive the cache
  /// when given. Fails on zero capacity or an empty network.
  static Result<RouteEtaCache> Create(const RoadNetwork& net,
                                      const ProductOptions& opts,
                                      const SpeedProfileStore* profile);

  /// Registers the trendspeed_product_eta_* series. Null detaches.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Answers a fastest-route ETA against `snap`. NotFound propagates from
  /// FastestRoute (unreachable `to`); `from == to` is a defined degenerate
  /// query (empty route, zero seconds) and caches like any other. Results
  /// for an older snapshot version are discarded on sight, so a query can
  /// never be answered from a field the publisher has since replaced.
  Result<EtaResult> Eta(const SpeedSnapshot& snap, NodeId from, NodeId to);

  const Stats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  RouteEtaCache(const RoadNetwork& net, const ProductOptions& opts,
                const SpeedProfileStore* profile);

  /// (from, to) packed collision-free: from * num_nodes + to.
  uint64_t KeyOf(NodeId from, NodeId to) const {
    return static_cast<uint64_t>(from) * num_nodes_ + to;
  }

  /// Drops every entry not stamped with `version` and rebuilds the pricing
  /// field (raw fresh speeds, or the profile blend when stale).
  void SyncToSnapshot(const SpeedSnapshot& snap);

  struct Entry {
    EtaResult result;
  };

  const RoadNetwork* net_;
  const SpeedProfileStore* profile_;  ///< may be null (no blending)
  size_t capacity_;
  uint64_t num_nodes_;

  /// Identity of the snapshot the pricing field and entries belong to.
  uint64_t synced_version_ = 0;
  uint32_t synced_stale_slots_ = 0;
  std::vector<double> pricing_speeds_;
  SpeedProvenance field_provenance_ = SpeedProvenance::kFresh;

  std::unordered_map<uint64_t, Entry> entries_;
  Stats stats_;

  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_invalidations_ = nullptr;
  obs::Counter* m_blends_ = nullptr;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_PRODUCT_ROUTE_ETA_H_
