#include "product/profile.h"

#include <algorithm>
#include <cmath>

#include "obs/catalog.h"
#include "util/binary_io.h"

namespace trendspeed {

namespace {

constexpr char kProfileTag[4] = {'T', 'S', 'P', 'F'};
constexpr uint32_t kProfileWireVersion = 1;

}  // namespace

const char* SpeedProvenanceName(SpeedProvenance p) {
  switch (p) {
    case SpeedProvenance::kFresh:
      return "fresh";
    case SpeedProvenance::kCarriedForward:
      return "carried_forward";
    case SpeedProvenance::kProfileBlend:
      return "profile_blend";
  }
  return "unknown";
}

SpeedProfileStore::SpeedProfileStore(size_t num_roads, uint32_t slots_per_day,
                                     const ProductOptions& opts)
    : num_roads_(num_roads),
      slots_per_day_(slots_per_day),
      buckets_per_day_(opts.profile_buckets_per_day),
      min_samples_(opts.profile_min_samples),
      blend_full_stale_slots_(opts.blend_full_stale_slots),
      cells_(num_roads * opts.profile_buckets_per_day) {}

Result<SpeedProfileStore> SpeedProfileStore::Create(
    size_t num_roads, uint32_t slots_per_day, const ProductOptions& opts) {
  if (num_roads == 0) {
    return Status::InvalidArgument("profile store needs at least one road");
  }
  if (slots_per_day == 0) {
    return Status::InvalidArgument("slots_per_day must be positive");
  }
  ProductOptions checked = opts;
  checked.enabled = true;  // validate the knobs even for a standalone store
  TS_RETURN_NOT_OK(checked.Validate());
  if (opts.profile_buckets_per_day > slots_per_day) {
    return Status::InvalidArgument(
        "profile_buckets_per_day (" +
        std::to_string(opts.profile_buckets_per_day) +
        ") exceeds slots_per_day (" + std::to_string(slots_per_day) +
        "); a bucket finer than the slot grid can never fill");
  }
  return SpeedProfileStore(num_roads, slots_per_day, opts);
}

void SpeedProfileStore::AttachMetrics(obs::MetricsRegistry* registry) {
  m_folds_ = obs::GetCounter(registry, obs::kProductProfileFoldsTotal);
  m_stale_skips_ =
      obs::GetCounter(registry, obs::kProductProfileStaleSkipsTotal);
}

bool SpeedProfileStore::Fold(const SpeedSnapshot& snap) {
  if (snap.version == 0 || snap.version <= last_version_) {
    return false;  // nothing published, or this publish was already folded
  }
  if (snap.speed_kmh.size() != num_roads_) {
    return false;  // a snapshot for some other network; never mix fields
  }
  last_version_ = snap.version;
  if (snap.stale) {
    ++stale_skips_;
    obs::Add(m_stale_skips_);
    return false;
  }
  const uint32_t bucket = BucketOf(snap.slot);
  for (size_t road = 0; road < num_roads_; ++road) {
    Cell& c = cells_[road * buckets_per_day_ + bucket];
    ++c.count;
    c.mean_kmh += (snap.speed_kmh[road] - c.mean_kmh) /
                  static_cast<double>(c.count);
  }
  ++folds_;
  obs::Add(m_folds_);
  return true;
}

SpeedProfileStore::BlendedSpeed SpeedProfileStore::BlendQuery(
    const SpeedSnapshot& snap, RoadId road) const {
  BlendedSpeed out;
  const double snap_speed =
      road < snap.speed_kmh.size() ? snap.speed_kmh[road] : 0.0;
  out.speed_kmh = snap_speed;
  if (!snap.stale) {
    out.provenance = SpeedProvenance::kFresh;
    return out;
  }
  const Cell& c = cell(road, BucketOf(snap.slot));
  if (c.count < min_samples_) {
    out.provenance = SpeedProvenance::kCarriedForward;
    return out;
  }
  const double w =
      std::min(1.0, static_cast<double>(snap.stale_slots) /
                        static_cast<double>(blend_full_stale_slots_));
  out.speed_kmh = (1.0 - w) * snap_speed + w * c.mean_kmh;
  out.provenance = SpeedProvenance::kProfileBlend;
  return out;
}

SpeedProvenance SpeedProfileStore::BlendSnapshot(const SpeedSnapshot& snap,
                                                 std::vector<double>* speeds,
                                                 size_t* blended_roads) const {
  speeds->resize(num_roads_);
  size_t blended = 0;
  SpeedProvenance weakest = SpeedProvenance::kFresh;
  for (size_t road = 0; road < num_roads_; ++road) {
    BlendedSpeed b = BlendQuery(snap, static_cast<RoadId>(road));
    (*speeds)[road] = b.speed_kmh;
    if (b.provenance == SpeedProvenance::kProfileBlend) {
      ++blended;
      weakest = SpeedProvenance::kProfileBlend;
    } else if (b.provenance == SpeedProvenance::kCarriedForward &&
               weakest == SpeedProvenance::kFresh) {
      weakest = SpeedProvenance::kCarriedForward;
    }
  }
  if (blended_roads != nullptr) *blended_roads = blended;
  return weakest;
}

Status SpeedProfileStore::Merge(const SpeedProfileStore& other) {
  if (other.num_roads_ != num_roads_ ||
      other.slots_per_day_ != slots_per_day_ ||
      other.buckets_per_day_ != buckets_per_day_) {
    return Status::InvalidArgument(
        "profile stores have different shapes; refusing to merge");
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    const Cell& o = other.cells_[i];
    if (o.count == 0) continue;
    Cell& c = cells_[i];
    const uint64_t total = c.count + o.count;
    c.mean_kmh = (c.mean_kmh * static_cast<double>(c.count) +
                  o.mean_kmh * static_cast<double>(o.count)) /
                 static_cast<double>(total);
    c.count = total;
  }
  folds_ += other.folds_;
  stale_skips_ += other.stale_skips_;
  last_version_ = std::max(last_version_, other.last_version_);
  return Status::OK();
}

std::string EncodeSpeedProfile(const SpeedProfileStore& store) {
  BinaryWriter w;
  w.PutTag(kProfileTag, kProfileWireVersion);
  w.PutU64(store.num_roads_);
  w.PutU32(store.slots_per_day_);
  w.PutU32(store.buckets_per_day_);
  w.PutU64(store.last_version_);
  w.PutU64(store.folds_);
  w.PutU64(store.stale_skips_);
  for (const SpeedProfileStore::Cell& c : store.cells_) {
    w.PutU64(c.count);
    w.PutF64(c.mean_kmh);
  }
  return w.buffer();
}

Result<SpeedProfileStore> DecodeSpeedProfile(const std::string& bytes,
                                             const ProductOptions& opts) {
  BinaryReader r(bytes);
  TS_ASSIGN_OR_RETURN(uint32_t version, r.ExpectTag(kProfileTag));
  if (version != kProfileWireVersion) {
    return Status::InvalidArgument("unsupported profile wire version " +
                                   std::to_string(version));
  }
  TS_ASSIGN_OR_RETURN(uint64_t num_roads, r.GetU64());
  TS_ASSIGN_OR_RETURN(uint32_t slots_per_day, r.GetU32());
  TS_ASSIGN_OR_RETURN(uint32_t buckets_per_day, r.GetU32());
  if (buckets_per_day != opts.profile_buckets_per_day) {
    return Status::InvalidArgument(
        "profile file has " + std::to_string(buckets_per_day) +
        " buckets/day but options ask for " +
        std::to_string(opts.profile_buckets_per_day));
  }
  // 16 bytes per cell (after a 24-byte fold-state header); a road count
  // beyond the remaining bytes is truncation/corruption, caught before the
  // allocation it would size.
  if (num_roads == 0 || slots_per_day == 0 || buckets_per_day == 0 ||
      r.remaining() < 24 ||
      num_roads > (r.remaining() - 24) / (16ull * buckets_per_day)) {
    return Status::InvalidArgument("profile file truncated or corrupt");
  }
  TS_ASSIGN_OR_RETURN(
      SpeedProfileStore store,
      SpeedProfileStore::Create(num_roads, slots_per_day, opts));
  TS_ASSIGN_OR_RETURN(store.last_version_, r.GetU64());
  TS_ASSIGN_OR_RETURN(store.folds_, r.GetU64());
  TS_ASSIGN_OR_RETURN(store.stale_skips_, r.GetU64());
  for (SpeedProfileStore::Cell& c : store.cells_) {
    TS_ASSIGN_OR_RETURN(c.count, r.GetU64());
    TS_ASSIGN_OR_RETURN(c.mean_kmh, r.GetF64());
    if (!std::isfinite(c.mean_kmh)) {
      return Status::InvalidArgument("non-finite profile mean on the wire");
    }
    if (c.count == 0 && c.mean_kmh != 0.0) {
      return Status::InvalidArgument(
          "profile cell claims a mean with zero samples");
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after profile");
  }
  return store;
}

}  // namespace trendspeed
