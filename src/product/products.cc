#include "product/products.h"

#include <chrono>
#include <utility>

#include "obs/catalog.h"

namespace trendspeed {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

CityProducts::CityProducts(const RoadNetwork& net,
                           const SpeedSnapshotPublisher* publisher,
                           std::unique_ptr<SpeedProfileStore> profile,
                           std::unique_ptr<RouteEtaCache> eta_cache)
    : net_(&net),
      publisher_(publisher),
      profile_(std::move(profile)),
      eta_cache_(std::move(eta_cache)) {}

Result<CityProducts> CityProducts::Create(
    const RoadNetwork& net, const SpeedSnapshotPublisher* publisher,
    uint32_t slots_per_day, const ProductOptions& opts) {
  if (publisher == nullptr) {
    return Status::InvalidArgument(
        "products need a snapshot publisher to read from (enable "
        "ServingOptions::publish_snapshots)");
  }
  if (!opts.enabled) {
    return Status::InvalidArgument("ProductOptions::enabled is false");
  }
  TS_RETURN_NOT_OK(opts.Validate());
  TS_ASSIGN_OR_RETURN(
      SpeedProfileStore profile,
      SpeedProfileStore::Create(net.num_roads(), slots_per_day, opts));
  auto profile_ptr = std::make_unique<SpeedProfileStore>(std::move(profile));
  TS_ASSIGN_OR_RETURN(RouteEtaCache cache,
                      RouteEtaCache::Create(net, opts, profile_ptr.get()));
  auto cache_ptr = std::make_unique<RouteEtaCache>(std::move(cache));
  return CityProducts(net, publisher, std::move(profile_ptr),
                      std::move(cache_ptr));
}

Result<CityProducts> CityProducts::ForSession(const RoadNetwork& net,
                                              const ServingSession& session,
                                              uint32_t slots_per_day) {
  const ProductOptions& opts = session.options().products;
  if (!opts.enabled) {
    return Status::FailedPrecondition(
        "session was created with products disabled");
  }
  return Create(net, session.snapshot_publisher(), slots_per_day, opts);
}

void CityProducts::AttachMetrics(obs::MetricsRegistry* registry) {
  profile_->AttachMetrics(registry);
  eta_cache_->AttachMetrics(registry);
  m_read_latency_ = obs::GetHistogram(registry, obs::kProductReadLatencyUs);
}

bool CityProducts::ReadLatest() {
  return publisher_->Read(&snap_);
}

bool CityProducts::Poll() {
  if (!ReadLatest()) return false;
  profile_->Fold(snap_);
  return true;
}

Result<RouteEtaCache::EtaResult> CityProducts::Eta(NodeId from, NodeId to) {
  const auto start = std::chrono::steady_clock::now();
  if (!ReadLatest()) {
    return Status::FailedPrecondition(
        "no snapshot published yet; nothing to route on");
  }
  // Keep the profile current before pricing: an Eta between Polls must not
  // blend against an older fold state than the field it prices.
  profile_->Fold(snap_);
  TS_ASSIGN_OR_RETURN(RouteEtaCache::EtaResult result,
                      eta_cache_->Eta(snap_, from, to));
  obs::Observe(m_read_latency_, MicrosSince(start));
  return result;
}

Result<SpeedProfileStore::BlendedSpeed> CityProducts::RoadSpeed(RoadId road) {
  const auto start = std::chrono::steady_clock::now();
  if (!ReadLatest()) {
    return Status::FailedPrecondition(
        "no snapshot published yet; nothing to serve");
  }
  if (road >= net_->num_roads()) {
    return Status::InvalidArgument("road outside the network");
  }
  profile_->Fold(snap_);
  SpeedProfileStore::BlendedSpeed speed = profile_->BlendQuery(snap_, road);
  obs::Observe(m_read_latency_, MicrosSince(start));
  return speed;
}

}  // namespace trendspeed
