// Per-segment time-of-day speed profiles, folded incrementally from the
// served snapshot stream.
//
// "Street-level Travel-time Estimation via Aggregated Uber Data" (PAPERS.md)
// motivates the product shape: for each (road, time-of-day bucket) keep a
// cheap (count, mean) cell that any number of published snapshots fold into.
// The cells are:
//
//   * incremental — Fold() is O(num_roads) per snapshot, one running-mean
//     update per road, no history kept;
//   * mergeable — Merge() combines two stores cell by cell with
//     count-weighted means, so per-reader (or per-process) stores can be
//     aggregated into one city profile;
//   * exportable — Encode/DecodeSpeedProfile round-trip the store through
//     the io layer's framed-binary discipline (util/binary_io.h), so a
//     profile survives process restarts and ships between tiers.
//
// Only *fresh* snapshots fold: a carried-forward field re-states the last
// estimate, and folding it again would weight stale slots as if they were
// independent evidence. Duplicate publishes are skipped by version.
//
// The HTTE-style payoff (PAPERS.md) is BlendQuery: when the latest snapshot
// is stale, blend it toward the profile mean for that time bucket — the
// staler the snapshot, the more the historical profile dominates — instead
// of serving an ever-aging carry-forward at full confidence. The returned
// provenance says exactly which regime priced the speed.

#ifndef TRENDSPEED_PRODUCT_PROFILE_H_
#define TRENDSPEED_PRODUCT_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/serving.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "roadnet/road_network.h"
#include "util/status.h"

namespace trendspeed {

/// Where a product-served speed came from. Ordered by decreasing trust.
enum class SpeedProvenance : uint8_t {
  kFresh = 0,           ///< latest snapshot, estimated this slot
  kCarriedForward = 1,  ///< stale snapshot served as-is (no profile data)
  kProfileBlend = 2,    ///< stale snapshot blended toward the profile mean
};

const char* SpeedProvenanceName(SpeedProvenance p);

class SpeedProfileStore {
 public:
  /// One (road, bucket) cell: running mean over the fresh snapshots folded.
  struct Cell {
    uint64_t count = 0;
    double mean_kmh = 0.0;
  };

  /// A blended per-road answer plus its provenance.
  struct BlendedSpeed {
    double speed_kmh = 0.0;
    SpeedProvenance provenance = SpeedProvenance::kFresh;
  };

  /// `slots_per_day` is the serving slot grid (e.g. 144 for 10-minute
  /// slots); `opts` supplies buckets_per_day / min_samples / blend ramp.
  /// Fails on zero roads/slots or invalid options.
  static Result<SpeedProfileStore> Create(size_t num_roads,
                                          uint32_t slots_per_day,
                                          const ProductOptions& opts);

  /// Registers the trendspeed_product_profile_* series. Null detaches (the
  /// default).
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Folds one published snapshot into the profile. Returns true when the
  /// snapshot was folded; false when it was skipped — already folded
  /// (version not newer than the last fold), stale (counted, never folded),
  /// or shaped for a different network (size mismatch).
  bool Fold(const SpeedSnapshot& snap);

  /// Blended speed for one road against the given snapshot (normally the
  /// latest read). Fresh snapshot: the snapshot speed, kFresh. Stale
  /// snapshot with a mature profile cell (count >= profile_min_samples):
  /// (1-w) * snapshot + w * profile mean with
  /// w = min(1, stale_slots / blend_full_stale_slots), kProfileBlend.
  /// Stale without a mature cell: the snapshot speed, kCarriedForward.
  BlendedSpeed BlendQuery(const SpeedSnapshot& snap, RoadId road) const;

  /// Whole-field variant: fills `speeds` (resized to num_roads) with the
  /// per-road blended speeds and returns the weakest provenance used —
  /// kFresh only when the snapshot was fresh, kProfileBlend when any road
  /// blended, else kCarriedForward. `blended_roads` (optional) receives the
  /// number of roads the profile actually adjusted.
  SpeedProvenance BlendSnapshot(const SpeedSnapshot& snap,
                                std::vector<double>* speeds,
                                size_t* blended_roads = nullptr) const;

  /// Count-weighted cell-by-cell merge; fails unless the stores share
  /// num_roads, slots_per_day, and buckets_per_day.
  Status Merge(const SpeedProfileStore& other);

  uint32_t BucketOf(uint64_t slot) const {
    return static_cast<uint32_t>(
        (slot % slots_per_day_) * buckets_per_day_ / slots_per_day_);
  }

  const Cell& cell(RoadId road, uint32_t bucket) const {
    return cells_[static_cast<size_t>(road) * buckets_per_day_ + bucket];
  }

  size_t num_roads() const { return num_roads_; }
  uint32_t slots_per_day() const { return slots_per_day_; }
  uint32_t buckets_per_day() const { return buckets_per_day_; }
  /// Snapshot version of the last Fold() attempt that advanced the store
  /// (folded or stale-skipped); 0 before any.
  uint64_t last_version() const { return last_version_; }
  uint64_t folds() const { return folds_; }
  uint64_t stale_skips() const { return stale_skips_; }

 private:
  SpeedProfileStore(size_t num_roads, uint32_t slots_per_day,
                    const ProductOptions& opts);

  size_t num_roads_ = 0;
  uint32_t slots_per_day_ = 0;
  uint32_t buckets_per_day_ = 0;
  uint64_t min_samples_ = 0;
  uint32_t blend_full_stale_slots_ = 0;
  uint64_t last_version_ = 0;
  uint64_t folds_ = 0;
  uint64_t stale_skips_ = 0;
  std::vector<Cell> cells_;  ///< road-major: [road * buckets + bucket]

  obs::Counter* m_folds_ = nullptr;
  obs::Counter* m_stale_skips_ = nullptr;

  friend std::string EncodeSpeedProfile(const SpeedProfileStore& store);
  friend Result<SpeedProfileStore> DecodeSpeedProfile(
      const std::string& bytes, const ProductOptions& opts);
};

/// Framed binary export ("TSPF" v1, io-layer discipline): dimensions plus
/// every (count, mean) cell. encode(decode(bytes)) is byte-exact.
std::string EncodeSpeedProfile(const SpeedProfileStore& store);

/// Strict load: bad tags, truncation, dimension nonsense, non-finite means,
/// and trailing garbage fail with Status. Query knobs (min_samples, blend
/// ramp) come from `opts`, not the file — they are policy, not data.
Result<SpeedProfileStore> DecodeSpeedProfile(const std::string& bytes,
                                             const ProductOptions& opts);

}  // namespace trendspeed

#endif  // TRENDSPEED_PRODUCT_PROFILE_H_
