// CityProducts: the read-side product stack for one city — a profile store
// and a route-ETA cache fed from the city's seqlock snapshot publisher.
//
// The serving (writer) thread never knows this object exists. Everything
// here runs on reader threads against SpeedSnapshotPublisher::Read, which
// never blocks a publish (the seqlock contract; the product torture test
// runs one writer against N folding/routing readers under TSan to hold the
// line). That is also why "products off" is bitwise identical on the
// serving path: attaching products adds zero instructions to Ingest.
//
// Single-reader contract per CityProducts instance: Poll/Eta mutate the
// profile and cache, so one instance serves one reader thread. Many reader
// threads = many CityProducts over the same publisher (profiles can be
// Merge()d later); the shared surface is only the seqlock.

#ifndef TRENDSPEED_PRODUCT_PRODUCTS_H_
#define TRENDSPEED_PRODUCT_PRODUCTS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/serving.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "product/profile.h"
#include "product/route_eta.h"
#include "roadnet/road_network.h"
#include "util/status.h"

namespace trendspeed {

class CityProducts {
 public:
  /// `net` and `publisher` must outlive the products (the publisher is the
  /// session's — see ServingSession::snapshot_publisher()). `opts` must
  /// have enabled = true and validate; `slots_per_day` is the serving slot
  /// grid (traffic::kDefaultSlotsPerDay for the simulator's 10-minute
  /// slots).
  static Result<CityProducts> Create(const RoadNetwork& net,
                                     const SpeedSnapshotPublisher* publisher,
                                     uint32_t slots_per_day,
                                     const ProductOptions& opts);

  /// Convenience: builds products over a session's own network-sized
  /// publisher using the session's validated ServingOptions::products.
  /// Fails when the session does not publish snapshots or products are
  /// not enabled in its options.
  static Result<CityProducts> ForSession(const RoadNetwork& net,
                                         const ServingSession& session,
                                         uint32_t slots_per_day);

  /// Registers every trendspeed_product_* series. Null detaches.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Reads the latest snapshot and folds it into the profile (fresh fields
  /// only; duplicates and stale fields are skipped by the store). Returns
  /// true when a snapshot was read (even if skipped); false when nothing
  /// has been published yet. Call after each served slot, or on a timer —
  /// folding is version-deduplicated, so over-polling is harmless.
  bool Poll();

  /// Fastest-route ETA against the latest snapshot, answered through the
  /// version-invalidated cache (product/route_eta.h). FailedPrecondition
  /// before the first publish. The read latency lands in
  /// trendspeed_product_read_latency_us.
  Result<RouteEtaCache::EtaResult> Eta(NodeId from, NodeId to);

  /// Blended per-road speed for the latest snapshot (profile semantics —
  /// see SpeedProfileStore::BlendQuery). FailedPrecondition before the
  /// first publish.
  Result<SpeedProfileStore::BlendedSpeed> RoadSpeed(RoadId road);

  const SpeedProfileStore& profile() const { return *profile_; }
  const RouteEtaCache& eta_cache() const { return *eta_cache_; }
  /// The last snapshot Poll/Eta/RoadSpeed read (version 0 before the first
  /// successful read).
  const SpeedSnapshot& last_snapshot() const { return snap_; }

 private:
  CityProducts(const RoadNetwork& net, const SpeedSnapshotPublisher* publisher,
               std::unique_ptr<SpeedProfileStore> profile,
               std::unique_ptr<RouteEtaCache> eta_cache);

  /// Refreshes snap_ from the publisher; false before the first publish.
  bool ReadLatest();

  const RoadNetwork* net_;
  const SpeedSnapshotPublisher* publisher_;
  /// Heap-held so CityProducts stays movable (Result<CityProducts> moves it
  /// out of Create) while the cache's pointer into the profile never moves.
  std::unique_ptr<SpeedProfileStore> profile_;
  std::unique_ptr<RouteEtaCache> eta_cache_;
  SpeedSnapshot snap_;  ///< reused read buffer (no allocation per read)

  obs::Histogram* m_read_latency_ = nullptr;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_PRODUCT_PRODUCTS_H_
