// Save/load of trained estimator models.
//
// The offline phase (correlation mining + model fitting + influence
// precomputation) can take minutes at city scale; a deployment trains once,
// ships the model file to the online service, and re-attaches it to the
// (much smaller) network + history handles there.
//
// File layout: "TSPD" header + version, the pipeline config knobs the online
// phase needs, then the CORR / INFL / HSPD sections.

#ifndef TRENDSPEED_CORE_MODEL_IO_H_
#define TRENDSPEED_CORE_MODEL_IO_H_

#include <string>

#include "core/estimator.h"
#include "util/status.h"

namespace trendspeed {

/// Serializes a trained estimator to a buffer / file.
std::string SerializeTrainedModel(const TrafficSpeedEstimator& estimator);
Status SaveTrainedModel(const TrafficSpeedEstimator& estimator,
                        const std::string& path);

/// Re-attaches a serialized model to a network + history. `net` and `db`
/// must describe the same road network the model was trained on (sizes are
/// validated; semantics are the caller's contract).
Result<TrafficSpeedEstimator> DeserializeTrainedModel(
    const RoadNetwork* net, const HistoricalDb* db, std::string bytes);
Result<TrafficSpeedEstimator> LoadTrainedModel(const RoadNetwork* net,
                                               const HistoricalDb* db,
                                               const std::string& path);

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_MODEL_IO_H_
