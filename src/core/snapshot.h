// SpeedSnapshotPublisher: a seqlock-published, never-blocking read path for
// the served speed field.
//
// Millions of navigator/route-ETA readers and one estimator writer must
// share the per-slot speed field without the readers ever blocking the
// serving loop (or each other). The publisher keeps one fixed-size payload
// of relaxed std::atomic cells guarded by a sequence word:
//
//   writer   seq: even -> odd, write payload, odd -> even   (one per slot)
//   reader   read seq (even?), copy payload, re-read seq; retry on change
//
// Readers therefore take no locks, perform no allocation after the first
// Read into a given SpeedSnapshot, and can never observe a torn mix of two
// slots: any overlap with the writer flips the sequence and the reader
// retries. Because every payload cell is an atomic accessed with relaxed
// ordering (fences carry the ordering), the scheme is data-race-free by
// the letter of the memory model — the seqlock torture test runs clean
// under ThreadSanitizer (tests/snapshot_test.cc).
//
// The writer publishes at most once per slot (ServingSession does it after
// Ingest returns), so reader retries are vanishingly rare; the
// trendspeed_snapshot_read_retries_total counter makes them observable.

#ifndef TRENDSPEED_CORE_SNAPSHOT_H_
#define TRENDSPEED_CORE_SNAPSHOT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"

namespace trendspeed {

/// One consistent reader-side view of the served speed field. All fields
/// come from the same publish: `slot`, the staleness flags, and every
/// element of the two vectors are mutually consistent.
struct SpeedSnapshot {
  uint64_t slot = 0;
  /// Monotone publish count (1 = first publish). Lets a poller detect
  /// "nothing new since my last read" without comparing payloads.
  uint64_t version = 0;
  std::vector<double> speed_kmh;  ///< served estimate per road
  std::vector<double> deviation;  ///< relative deviation per road
  /// True when the payload is a carried-forward estimate, not a fresh one.
  bool stale = false;
  /// Consecutive carried-forward slots ending at this publish (0 = fresh).
  uint32_t stale_slots = 0;
  double mean_speed_kmh = 0.0;
};

class SpeedSnapshotPublisher {
 public:
  explicit SpeedSnapshotPublisher(size_t num_roads);

  SpeedSnapshotPublisher(const SpeedSnapshotPublisher&) = delete;
  SpeedSnapshotPublisher& operator=(const SpeedSnapshotPublisher&) = delete;

  /// Registers the trendspeed_snapshot_* series. Null detaches (the
  /// default); must be called before readers/writers race.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Writer side — exactly one thread at a time (the serving loop).
  /// `speed_kmh` and `deviation` must both have num_roads() elements.
  void Publish(uint64_t slot, const std::vector<double>& speed_kmh,
               const std::vector<double>& deviation, uint32_t stale_slots,
               double mean_speed_kmh);

  /// Reader side — any number of threads, lock-free, non-blocking.
  /// Returns false while nothing has been published yet; *out is then reset
  /// to an empty snapshot (slot/version 0, vectors cleared) so a reused
  /// SpeedSnapshot can never present a *previous* publisher's payload under
  /// this publisher's identity — the stale-tail bug multi-city pollers hit
  /// when cycling one snapshot object across per-city publishers of
  /// different num_roads (tests/snapshot_test.cc pins it). On true, *out is
  /// one internally consistent snapshot; the payload vectors are resized to
  /// this publisher's num_roads() every call (a no-op re-read, and clears
  /// keep capacity), so a reused SpeedSnapshot makes Read allocation-free
  /// after the first successful read against the largest publisher polled.
  bool Read(SpeedSnapshot* out) const;

  size_t num_roads() const { return num_roads_; }

  /// Publishes so far (== version of the latest snapshot); racy read.
  uint64_t publishes() const {
    return seq_.load(std::memory_order_relaxed) / 2;
  }

 private:
  const size_t num_roads_;
  /// Even = payload stable (seq/2 publishes completed); odd = writer busy.
  std::atomic<uint64_t> seq_{0};

  // Payload: plain-old-data cells, every one an atomic accessed relaxed.
  std::unique_ptr<std::atomic<double>[]> speed_;
  std::unique_ptr<std::atomic<double>[]> deviation_;
  std::atomic<uint64_t> slot_{0};
  std::atomic<uint32_t> stale_slots_{0};
  std::atomic<double> mean_speed_{0.0};

  obs::Counter* m_publishes_ = nullptr;
  obs::Counter* m_read_retries_ = nullptr;
  obs::Histogram* m_read_latency_us_ = nullptr;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_SNAPSHOT_H_
