// Live-speed routing: the navigation application the paper's introduction
// motivates. Consumes the all-road speed estimates produced each slot and
// answers travel-time and fastest-route queries against *current* (not
// free-flow) conditions.
//
// Two families of entry points:
//
//   * plain speed-vector overloads — pure functions of (network, speeds);
//     the caller owns any provenance of where the speeds came from;
//   * SpeedSnapshot overloads — consume the seqlock-published serving
//     snapshot (core/snapshot.h) and propagate its staleness provenance
//     into the result. Feeding `SpeedSnapshot::speed_kmh` through the plain
//     overloads silently discards the `stale`/`stale_slots` flags, so a
//     route ETA computed from a carried-forward field looked exactly like a
//     fresh one — the staleness-blind-routing bug this split fixes
//     (tests/routing_test.cc pins it).

#ifndef TRENDSPEED_CORE_ROUTING_H_
#define TRENDSPEED_CORE_ROUTING_H_

#include <cstdint>
#include <vector>

#include "core/snapshot.h"
#include "roadnet/road_network.h"
#include "util/status.h"

namespace trendspeed {

/// Travel time (seconds) along a road sequence at the given per-road speeds.
/// Fails if the sequence is not a contiguous drivable path or any speed is
/// non-positive. An empty path is InvalidArgument (there is no origin to
/// anchor a zero-length trip to; FastestRoute with from == to is the defined
/// way to get one).
Result<double> PathTravelTime(const RoadNetwork& net,
                              const std::vector<double>& speeds_kmh,
                              const std::vector<RoadId>& path);

struct RouteResult {
  std::vector<RoadId> roads;
  double travel_seconds = 0.0;
  double length_m = 0.0;
  /// Staleness provenance, stamped by the SpeedSnapshot overloads (the
  /// plain speed-vector overloads leave the defaults: fresh, slot 0). True
  /// when the speeds were a carried-forward estimate, not a fresh one —
  /// an ETA computed from them is a guess that ages with `stale_slots`.
  bool stale = false;
  /// Consecutive carried-forward slots behind the speeds used (0 = fresh).
  uint32_t stale_slots = 0;
  /// Slot the speeds were served for (snapshot overloads only).
  uint64_t slot = 0;
};

/// Fastest route under the given per-road speeds (Dijkstra). NotFound when
/// `to` is unreachable from `from`. `from == to` is a defined degenerate
/// query: an empty route with zero travel time and length.
Result<RouteResult> FastestRoute(const RoadNetwork& net,
                                 const std::vector<double>& speeds_kmh,
                                 NodeId from, NodeId to);

/// Snapshot-aware overload: routes on `snap.speed_kmh` and stamps the
/// snapshot's staleness provenance (stale, stale_slots, slot) into the
/// result so downstream consumers can tell a fresh ETA from an aged guess.
Result<RouteResult> FastestRoute(const RoadNetwork& net,
                                 const SpeedSnapshot& snap, NodeId from,
                                 NodeId to);

/// Travel time along a known path plus the provenance of the speeds that
/// priced it — what the snapshot overload of PathTravelTime returns.
struct PathEta {
  double travel_seconds = 0.0;
  bool stale = false;
  uint32_t stale_slots = 0;
  uint64_t slot = 0;
};

/// Snapshot-aware overload of PathTravelTime: same validation, staleness
/// provenance carried alongside the seconds.
Result<PathEta> PathTravelTime(const RoadNetwork& net,
                               const SpeedSnapshot& snap,
                               const std::vector<RoadId>& path);

/// Convenience: how much longer the current-conditions fastest route takes
/// than the free-flow fastest route between the same endpoints (>= ~1;
/// the classic congestion "travel time index"). `from == to` is defined as
/// 1.0 (an empty trip is never congested) rather than the 0/0 it used to
/// reject.
Result<double> CongestionRatio(const RoadNetwork& net,
                               const std::vector<double>& speeds_kmh,
                               NodeId from, NodeId to);

/// Congestion ratio plus the staleness provenance of the speeds behind it.
struct CongestionResult {
  double ratio = 1.0;
  bool stale = false;
  uint32_t stale_slots = 0;
  uint64_t slot = 0;
};

/// Snapshot-aware overload of CongestionRatio.
Result<CongestionResult> CongestionRatio(const RoadNetwork& net,
                                         const SpeedSnapshot& snap,
                                         NodeId from, NodeId to);

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_ROUTING_H_
