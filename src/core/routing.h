// Live-speed routing: the navigation application the paper's introduction
// motivates. Consumes the all-road speed estimates produced each slot and
// answers travel-time and fastest-route queries against *current* (not
// free-flow) conditions.

#ifndef TRENDSPEED_CORE_ROUTING_H_
#define TRENDSPEED_CORE_ROUTING_H_

#include <vector>

#include "roadnet/road_network.h"
#include "util/status.h"

namespace trendspeed {

/// Travel time (seconds) along a road sequence at the given per-road speeds.
/// Fails if the sequence is not a contiguous drivable path or any speed is
/// non-positive.
Result<double> PathTravelTime(const RoadNetwork& net,
                              const std::vector<double>& speeds_kmh,
                              const std::vector<RoadId>& path);

struct RouteResult {
  std::vector<RoadId> roads;
  double travel_seconds = 0.0;
  double length_m = 0.0;
};

/// Fastest route under the given per-road speeds (Dijkstra). NotFound when
/// `to` is unreachable from `from`.
Result<RouteResult> FastestRoute(const RoadNetwork& net,
                                 const std::vector<double>& speeds_kmh,
                                 NodeId from, NodeId to);

/// Convenience: how much longer the current-conditions fastest route takes
/// than the free-flow fastest route between the same endpoints (>= ~1;
/// the classic congestion "travel time index").
Result<double> CongestionRatio(const RoadNetwork& net,
                               const std::vector<double>& speeds_kmh,
                               NodeId from, NodeId to);

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_ROUTING_H_
