// End-to-end pipeline configuration for the TrafficSpeedEstimator.

#ifndef TRENDSPEED_CORE_CONFIG_H_
#define TRENDSPEED_CORE_CONFIG_H_

#include "corr/correlation_graph.h"
#include "seed/objective.h"
#include "speed/hierarchical_model.h"
#include "speed/propagation.h"
#include "trend/trend_model.h"
#include "util/status.h"

namespace trendspeed {

struct PipelineConfig {
  CorrelationGraphOptions corr;
  TrendModelOptions trend;
  HierarchicalModelOptions speed;
  PropagationOptions propagation;
  InfluenceOptions influence;
  /// Thread/batch tuning for greedy seed selection (results are identical
  /// to serial selection; only wall time changes).
  SeedSelectionOptions seed_selection;
  /// Feed the calibrated logistic of the influence-weighted seed deviation
  /// into the trend MRF as soft node evidence (magnitude-aware Step 1).
  bool use_trend_evidence = true;

  /// Basic sanity validation; Build paths also validate individually.
  Status Validate() const;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_CONFIG_H_
