// End-to-end pipeline configuration for the TrafficSpeedEstimator.

#ifndef TRENDSPEED_CORE_CONFIG_H_
#define TRENDSPEED_CORE_CONFIG_H_

#include "corr/correlation_graph.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "seed/objective.h"
#include "shard/sharding.h"
#include "speed/hierarchical_model.h"
#include "speed/propagation.h"
#include "trend/trend_model.h"
#include "util/status.h"

namespace trendspeed {

/// Pipeline-wide observability wiring (docs/observability.md). Both
/// pointers are borrowed and must outlive every estimator / serving session
/// built from this config; null (the default) disables all recording —
/// instrumented hot paths then cost one predicted branch per record site
/// (bench/bench_observability_overhead.cc quantifies this as < 2%).
struct ObservabilityOptions {
  /// Destination for every trendspeed_* metric the pipeline emits.
  obs::MetricsRegistry* metrics = nullptr;
  /// Destination for ScopedSpan wall-clock spans ("bp/infer",
  /// "seed/<algorithm>", "estimator/estimate", "serving/ingest").
  obs::TraceRecorder* trace = nullptr;
  /// Also attach `metrics` to the process-wide ThreadPool::Global()
  /// (trendspeed_pool_* series). Off by default because the global pool is
  /// shared across estimators; last attach wins.
  bool instrument_thread_pool = false;
  /// Serving: an Ingest call slower than this bumps
  /// trendspeed_serving_slow_ingests_total. Must be positive and finite.
  double slow_ingest_ms = 250.0;
  /// Slot-causal flight recorder (obs/flight.h). Borrowed like the other
  /// sinks; when attached, every pipeline stage a slot passes through —
  /// queue wait, admission, estimate, per-shard BP solves, halo exchange,
  /// snapshot publish — records into per-thread rings that merge into one
  /// causal timeline per slot. Null (default): every flight site is one
  /// predicted branch and results are bitwise identical. Consumed by the
  /// serving layer only (ServingOptions::observability): the serving
  /// session hands the recorder down per call as an obs::FlightSink, so a
  /// recorder set on a PipelineConfig used purely for training is inert.
  obs::FlightRecorder* flight = nullptr;
  /// Per-stage latency SLO budgets + burn-rate policy (obs/slo.h). Only
  /// meaningful on the serving path; enabling any budget requires `flight`
  /// (the SLO engine consumes per-slot critical paths and dumps the flight
  /// ring on breach). Validated with the rest of the config.
  obs::SloOptions slo;
};

struct PipelineConfig {
  CorrelationGraphOptions corr;
  TrendModelOptions trend;
  HierarchicalModelOptions speed;
  PropagationOptions propagation;
  InfluenceOptions influence;
  /// Thread/batch tuning for greedy seed selection (results are identical
  /// to serial selection; only wall time changes).
  SeedSelectionOptions seed_selection;
  /// Feed the calibrated logistic of the influence-weighted seed deviation
  /// into the trend MRF as soft node evidence (magnitude-aware Step 1).
  bool use_trend_evidence = true;
  /// Spatial evidence backfill: roads outside every seed's influence
  /// neighbourhood inherit damped evidence from physically adjacent covered
  /// roads, expanded breadth-first for this many hops (0 disables the
  /// backfill; roads outside all influence then carry prior-only
  /// potentials).
  uint32_t evidence_backfill_hops = 3;
  /// Factor applied to the neighbour-mean evidence at each backfill hop,
  /// in (0, 1]: inherited signal decays with distance from real coverage.
  double evidence_backfill_damping = 0.6;
  /// District sharding for Step 1's BP (docs/sharding.md): num_shards >= 2
  /// partitions the correlation graph and routes trend inference through
  /// the concurrent per-shard engine (BP engine only — validation rejects
  /// the combination with sampling/MAP engines). Default off: the flat
  /// single-graph path runs bit for bit as before.
  ShardingOptions sharding;
  /// Metrics/tracing sinks; propagated into the BP and seed-selection
  /// options by TrafficSpeedEstimator::FromComponents (per-stage pointers
  /// set explicitly here take precedence — FromComponents only fills the
  /// ones left null).
  ObservabilityOptions observability;

  /// Basic sanity validation; Build paths also validate individually.
  Status Validate() const;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_CONFIG_H_
