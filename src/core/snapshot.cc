#include "core/snapshot.h"

#include "obs/catalog.h"
#include "util/logging.h"
#include "util/timer.h"

namespace trendspeed {

SpeedSnapshotPublisher::SpeedSnapshotPublisher(size_t num_roads)
    : num_roads_(num_roads),
      speed_(std::make_unique<std::atomic<double>[]>(num_roads)),
      deviation_(std::make_unique<std::atomic<double>[]>(num_roads)) {
  TS_CHECK_GT(num_roads, 0u);
  for (size_t i = 0; i < num_roads_; ++i) {
    speed_[i].store(0.0, std::memory_order_relaxed);
    deviation_[i].store(0.0, std::memory_order_relaxed);
  }
}

void SpeedSnapshotPublisher::AttachMetrics(obs::MetricsRegistry* registry) {
  m_publishes_ = obs::GetCounter(registry, obs::kSnapshotPublishesTotal);
  m_read_retries_ = obs::GetCounter(registry, obs::kSnapshotReadRetriesTotal);
  m_read_latency_us_ =
      obs::GetHistogram(registry, obs::kSnapshotReadLatencyUs);
}

void SpeedSnapshotPublisher::Publish(uint64_t slot,
                                     const std::vector<double>& speed_kmh,
                                     const std::vector<double>& deviation,
                                     uint32_t stale_slots,
                                     double mean_speed_kmh) {
  TS_CHECK_EQ(speed_kmh.size(), num_roads_);
  TS_CHECK_EQ(deviation.size(), num_roads_);
  uint64_t s = seq_.load(std::memory_order_relaxed);
  // Odd = write in progress. The release fence orders the odd store before
  // every payload store in the visibility order a racing reader sees, so a
  // reader that observes any of this publish's payload also observes the
  // odd (or the final even) sequence and retries.
  seq_.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < num_roads_; ++i) {
    speed_[i].store(speed_kmh[i], std::memory_order_relaxed);
    deviation_[i].store(deviation[i], std::memory_order_relaxed);
  }
  slot_.store(slot, std::memory_order_relaxed);
  stale_slots_.store(stale_slots, std::memory_order_relaxed);
  mean_speed_.store(mean_speed_kmh, std::memory_order_relaxed);
  seq_.store(s + 2, std::memory_order_release);
  obs::Add(m_publishes_);
}

bool SpeedSnapshotPublisher::Read(SpeedSnapshot* out) const {
  WallTimer timer;
  // A failed read must leave no residue: a reused SpeedSnapshot previously
  // filled from another publisher would otherwise keep that publisher's
  // slot/version and a resize()-truncated head of its payload — a stale
  // tail that a multi-city poller cycling one object across per-city
  // publishers could mistake for this city's field. clear() keeps capacity,
  // so the reuse stays allocation-free.
  if (seq_.load(std::memory_order_acquire) == 0) {
    out->speed_kmh.clear();
    out->deviation.clear();
    out->slot = 0;
    out->version = 0;
    out->stale = false;
    out->stale_slots = 0;
    out->mean_speed_kmh = 0.0;
    return false;  // nothing published yet
  }
  out->speed_kmh.resize(num_roads_);
  out->deviation.resize(num_roads_);
  for (;;) {
    uint64_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 == 0) return false;  // unreachable: seq_ never decreases
    if ((s1 & 1) == 0) {
      for (size_t i = 0; i < num_roads_; ++i) {
        out->speed_kmh[i] = speed_[i].load(std::memory_order_relaxed);
        out->deviation[i] = deviation_[i].load(std::memory_order_relaxed);
      }
      out->slot = slot_.load(std::memory_order_relaxed);
      out->stale_slots = stale_slots_.load(std::memory_order_relaxed);
      out->mean_speed_kmh = mean_speed_.load(std::memory_order_relaxed);
      // Pairs with the writer's release fence: if any payload load above
      // saw a concurrent publish, this seq re-read sees its odd store.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) {
        out->version = s1 / 2;
        out->stale = out->stale_slots > 0;
        if (m_read_latency_us_ != nullptr) {
          obs::Observe(m_read_latency_us_, timer.ElapsedMillis() * 1000.0);
        }
        return true;
      }
    }
    obs::Add(m_read_retries_);
  }
}

}  // namespace trendspeed
