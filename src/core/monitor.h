// OnlineTrafficMonitor: the production-shaped streaming wrapper around the
// estimator. Each time slot it ingests the crowdsourced observations,
// produces all-road estimates, maintains per-road congestion state with
// hysteresis, and raises/clears alerts for sustained abnormal slowdowns
// (the incident-detection consumer the paper's introduction motivates).

#ifndef TRENDSPEED_CORE_MONITOR_H_
#define TRENDSPEED_CORE_MONITOR_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "util/status.h"

namespace trendspeed {

struct MonitorOptions {
  /// Estimated relative deviation at or below this arms a road.
  double alert_deviation = -0.3;
  /// A road must stay below the threshold for this many consecutive
  /// processed slots before an alert is raised (debounce).
  uint32_t alert_after_slots = 2;
  /// An active alert clears once the deviation recovers above this.
  double clear_deviation = -0.15;
  /// EWMA factor for the per-road smoothed deviation.
  double ewma_alpha = 0.4;
  /// A road counts toward SlotReport::congested_roads while its smoothed
  /// deviation sits below this (milder than alert_deviation: a dashboard
  /// statistic, not an alert).
  double congested_deviation = -0.15;
};

/// One raised or cleared alert.
struct TrafficAlert {
  RoadId road = kInvalidRoad;
  uint64_t slot = 0;
  bool raised = true;  ///< false = cleared
  double deviation = 0.0;
};

class OnlineTrafficMonitor {
 public:
  /// The estimator must outlive the monitor.
  OnlineTrafficMonitor(const TrafficSpeedEstimator* estimator,
                       const MonitorOptions& opts = {});

  /// Output of one processed slot.
  struct SlotReport {
    TrafficSpeedEstimator::Output estimate;
    std::vector<TrafficAlert> new_alerts;  ///< raised or cleared this slot
    double mean_speed_kmh = 0.0;
    size_t congested_roads = 0;  ///< smoothed deviation < congested_deviation
  };

  /// Processes one slot. Slots must be fed in strictly increasing order;
  /// re-sending the current slot is rejected (it would double-apply the
  /// EWMA updates and alert streaks).
  Result<SlotReport> Process(uint64_t slot,
                             const std::vector<SeedSpeed>& observations);

  /// Stateful variant: forwards `state` to the estimator so Step 1 can
  /// warm-start across consecutive slots. Null behaves exactly like the
  /// overload above; lifecycle rules are the caller's (see
  /// TrafficSpeedEstimator::Estimate).
  Result<SlotReport> Process(uint64_t slot,
                             const std::vector<SeedSpeed>& observations,
                             TrendInferenceState* state);

  /// Slot-trace variant: additionally forwards the serving layer's
  /// flight-recorder hookup so the estimator's spans (estimate, BP solve,
  /// exchange) join the slot's causal timeline. A default (detached) sink
  /// behaves exactly like the overload above.
  Result<SlotReport> Process(uint64_t slot,
                             const std::vector<SeedSpeed>& observations,
                             TrendInferenceState* state,
                             const obs::FlightSink& flight);

  /// Roads currently under an active alert.
  std::vector<RoadId> ActiveAlerts() const;

  /// Smoothed deviation of a road (0 before the first Process call).
  double SmoothedDeviation(RoadId road) const { return ewma_[road]; }

  size_t slots_processed() const { return slots_processed_; }

 private:
  const TrafficSpeedEstimator* estimator_;
  MonitorOptions opts_;
  std::vector<double> ewma_;
  /// 1 once road r's EWMA has been seeded by a directly observed slot;
  /// until then the EWMA accumulates from 0 at the normal alpha, so
  /// backfilled/carried-forward deviations can never arm a road at full
  /// weight on its first appearance.
  std::vector<uint8_t> ewma_seeded_;
  std::vector<uint32_t> below_streak_;
  std::vector<bool> alert_active_;
  uint64_t last_slot_ = 0;
  size_t slots_processed_ = 0;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_MONITOR_H_
