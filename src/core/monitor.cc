#include "core/monitor.h"

#include "util/logging.h"

namespace trendspeed {

OnlineTrafficMonitor::OnlineTrafficMonitor(
    const TrafficSpeedEstimator* estimator, const MonitorOptions& opts)
    : estimator_(estimator),
      opts_(opts),
      ewma_(estimator->network().num_roads(), 0.0),
      ewma_seeded_(estimator->network().num_roads(), 0),
      below_streak_(estimator->network().num_roads(), 0),
      alert_active_(estimator->network().num_roads(), false) {
  TS_CHECK(estimator != nullptr);
  TS_CHECK_GT(opts.ewma_alpha, 0.0);
  TS_CHECK_LE(opts.ewma_alpha, 1.0);
  TS_CHECK_LT(opts.alert_deviation, opts.clear_deviation);
  TS_CHECK_LT(opts.congested_deviation, 0.0);
}

Result<OnlineTrafficMonitor::SlotReport> OnlineTrafficMonitor::Process(
    uint64_t slot, const std::vector<SeedSpeed>& observations) {
  return Process(slot, observations, nullptr);
}

Result<OnlineTrafficMonitor::SlotReport> OnlineTrafficMonitor::Process(
    uint64_t slot, const std::vector<SeedSpeed>& observations,
    TrendInferenceState* state) {
  return Process(slot, observations, state, obs::FlightSink{});
}

Result<OnlineTrafficMonitor::SlotReport> OnlineTrafficMonitor::Process(
    uint64_t slot, const std::vector<SeedSpeed>& observations,
    TrendInferenceState* state, const obs::FlightSink& flight) {
  if (slots_processed_ > 0 && slot <= last_slot_) {
    return Status::InvalidArgument(
        "slots must be processed in strictly increasing order");
  }
  SlotReport report;
  TS_ASSIGN_OR_RETURN(
      report.estimate, estimator_->Estimate(slot, observations, state, flight));
  const RoadNetwork& net = estimator_->network();
  // Roads directly observed this slot: only a real observation may seed a
  // road's EWMA at full weight. Seeding every road from the first slot's
  // deviation handed unobserved roads their carried-forward/backfilled
  // deviation at full weight, which could instantly cross alert_deviation
  // before a single direct measurement existed (regression-tested in
  // monitor_test.cc). Unseeded roads instead accumulate from 0 at the
  // usual alpha, so an inferred slowdown still alarms — after the same
  // debounce every other road gets.
  std::vector<uint8_t> observed(net.num_roads(), 0);
  for (const SeedSpeed& s : observations) {
    if (s.road < net.num_roads()) observed[s.road] = 1;
  }
  double speed_sum = 0.0;
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    double d = report.estimate.speeds.deviation[r];
    if (!ewma_seeded_[r] && observed[r]) {
      ewma_[r] = d;
      ewma_seeded_[r] = 1;
    } else {
      ewma_[r] =
          (1.0 - opts_.ewma_alpha) * ewma_[r] + opts_.ewma_alpha * d;
    }
    speed_sum += report.estimate.speeds.speed_kmh[r];
    if (ewma_[r] < opts_.congested_deviation) ++report.congested_roads;

    if (!alert_active_[r]) {
      if (ewma_[r] <= opts_.alert_deviation) {
        ++below_streak_[r];
        if (below_streak_[r] >= opts_.alert_after_slots) {
          alert_active_[r] = true;
          report.new_alerts.push_back(TrafficAlert{r, slot, true, ewma_[r]});
        }
      } else {
        below_streak_[r] = 0;
      }
    } else if (ewma_[r] >= opts_.clear_deviation) {
      alert_active_[r] = false;
      below_streak_[r] = 0;
      report.new_alerts.push_back(TrafficAlert{r, slot, false, ewma_[r]});
    }
  }
  report.mean_speed_kmh =
      speed_sum / static_cast<double>(net.num_roads());
  last_slot_ = slot;
  ++slots_processed_;
  return report;
}

std::vector<RoadId> OnlineTrafficMonitor::ActiveAlerts() const {
  std::vector<RoadId> out;
  for (RoadId r = 0; r < alert_active_.size(); ++r) {
    if (alert_active_[r]) out.push_back(r);
  }
  return out;
}

}  // namespace trendspeed
