// ServingSession: the hardened online ingestion/serving layer.
//
// OnlineTrafficMonitor assumes a well-behaved caller: strictly increasing
// slots, one observation per road, physically plausible speeds. Production
// crowd streams guarantee none of that — reports arrive late, twice, with
// fat-fingered or sensor-garbage values, or not at all. ServingSession wraps
// the estimator + monitor behind a single Ingest(slot, observations) call
// that enforces the contract at the boundary:
//
//   * strict validation — NaN/negative/absurd speeds and out-of-range roads
//     are rejected with a Status (never a TS_CHECK abort), either failing
//     the whole batch (kStrict) or dropping the bad entries (kFilter);
//   * per-road deduplication by configurable policy;
//   * idempotent duplicate slots — re-delivering the last slot returns the
//     cached report without double-applying monitor state;
//   * graceful rejection of out-of-order (stale) slot arrivals;
//   * carry-forward — when a slot arrives empty (or estimation fails) the
//     last good estimate is re-served with a staleness flag, up to a
//     configurable limit;
//   * cumulative degradation counters (ServingStats) for operations.
//
// See docs/serving.md for the full contract and tests/fault_injection_test.cc
// for the harness that replays a clean scenario under injected faults.

#ifndef TRENDSPEED_CORE_SERVING_H_
#define TRENDSPEED_CORE_SERVING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimator.h"
#include "core/monitor.h"
#include "core/snapshot.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "util/status.h"

namespace trendspeed {

/// Resolution of multiple observations for the same road in one batch.
enum class DedupPolicy {
  kMean,       ///< average the duplicate speeds (default)
  kKeepFirst,  ///< first occurrence wins
  kKeepLast,   ///< last occurrence wins
  kReject,     ///< duplicates fail the batch with InvalidArgument
};

/// Handling of malformed observations (bad road id / non-finite,
/// non-positive, or implausibly large speed).
enum class ValidationPolicy {
  kStrict,  ///< any malformed observation fails the batch (default)
  kFilter,  ///< malformed observations are dropped and counted
};

/// Knobs for the optional lock-free MPSC ingest queue (core/ingest.h).
/// Off by default: a zero capacity means observation producers call
/// ServingSession::Ingest directly and IngestFrontEnd::Create is refused —
/// single-producer replays then stay bitwise identical to the pre-queue
/// serving loop by construction.
struct IngestQueueOptions {
  /// Bound on queued-but-undrained observations; rounded up to a power of
  /// two by the queue. 0 disables the front-end entirely.
  size_t capacity = 0;

  Status Validate() const;
};

/// Knobs for the read-side product layer (src/product: time-of-day speed
/// profiles and the route-ETA cache served from the seqlock snapshot).
/// The serving loop itself never touches products — they run on reader
/// threads against SpeedSnapshotPublisher::Read — but the knobs ride in
/// ServingOptions so one validated config describes a city end to end, and
/// enabling them requires the snapshot path they consume
/// (publish_snapshots). Detached (enabled = false, the default) the serving
/// path is bitwise identical to a product-free build; CityProducts
/// (product/products.h) is the consumer.
struct ProductOptions {
  bool enabled = false;
  /// Time-of-day buckets per day the profile store folds snapshots into
  /// (24 = hourly cells). Need not divide slots_per_day.
  uint32_t profile_buckets_per_day = 24;
  /// A profile cell participates in stale-snapshot blending only once it
  /// has folded at least this many fresh snapshots.
  uint64_t profile_min_samples = 4;
  /// Carried-forward slots over which the blend weight ramps from the
  /// snapshot toward the historical profile (at this streak the profile
  /// fully replaces the stale field).
  uint32_t blend_full_stale_slots = 6;
  /// Cached (from, to) route-ETA entries per cache.
  size_t eta_cache_capacity = 1024;

  Status Validate() const;
};

struct ServingOptions {
  MonitorOptions monitor;
  /// Observed speeds above this are malformed (sensor garbage / unit
  /// mistakes), not merely fast traffic.
  double max_speed_kmh = 250.0;
  DedupPolicy dedup = DedupPolicy::kMean;
  ValidationPolicy validation = ValidationPolicy::kStrict;
  /// Consecutive carried-forward slots tolerated before an empty/failed
  /// slot is refused with FailedPrecondition instead of re-serving an
  /// ever-staler estimate. 0 disables carry-forward entirely.
  uint32_t max_stale_slots = 12;
  /// Cross-slot warm-start for Step 1's belief propagation: the session
  /// owns a TrendInferenceState, seeds each slot's inference from the
  /// previous fixed point, and invalidates it whenever slot continuity
  /// breaks (creation, carry-forward, out-of-order rejection). Warm
  /// marginals track the cold ones within a few multiples of
  /// BpOptions::tol. Off by default: replays then stay bitwise
  /// reproducible slot by slot; turn it on for latency-sensitive
  /// production streams. Tune the activation threshold via
  /// PipelineConfig::trend.bp.warm_threshold (validated there).
  bool warm_start = false;
  /// Observability sinks for this session: the trendspeed_serving_* series
  /// (per-Ingest latency histogram, staleness gauge, slow-ingest counter,
  /// registry mirrors of every ServingStats field) and the "serving/ingest"
  /// span. `instrument_thread_pool` is ignored here — pool attachment is
  /// the estimator's decision (see PipelineConfig::observability). Sinks
  /// must outlive the session.
  ObservabilityOptions observability;
  /// Publish every served slot (fresh or carried forward) through a seqlock
  /// SpeedSnapshotPublisher, giving concurrent readers a non-blocking
  /// consistent (slot, speeds, staleness) view — see core/snapshot.h and
  /// docs/serving.md. Off by default: snapshot_publisher() is then null.
  bool publish_snapshots = false;
  /// Lock-free MPSC ingest front-end sizing; capacity 0 (default) = off.
  IngestQueueOptions ingest_queue;
  /// Read-side product layer knobs (profiles + ETA cache); off by default.
  /// products.enabled requires publish_snapshots — the products are views
  /// over the seqlock snapshot and have nothing to read without it.
  ProductOptions products;

  /// Full validation of every knob (including the wrapped MonitorOptions,
  /// so user-supplied options never trip the monitor's TS_CHECKs).
  Status Validate() const;
};

/// Cumulative degradation counters — a point-in-time snapshot returned by
/// ServingSession::stats(). Monotone over the session lifetime; a healthy
/// stream keeps everything but slots_estimated at 0.
///
/// Internally every field is backed by a relaxed std::atomic bumped in the
/// same ServingSession::Count call as its registry mirror, so the snapshot
/// and the exported counters agree at quiescence even when producer
/// threads feed the session through the MPSC front-end (the pre-atomic
/// plain-uint64 fields silently lost increments under that regime while
/// the atomic mirrors did not — divergence pinned by tests/ingest_test.cc).
struct ServingStats {
  uint64_t slots_estimated = 0;        ///< fresh estimates served
  uint64_t slots_carried_forward = 0;  ///< stale re-serves of the last good
  uint64_t duplicate_slots = 0;        ///< idempotent re-deliveries
  uint64_t out_of_order_slots = 0;     ///< stale arrivals rejected
  uint64_t rejected_batches = 0;       ///< batches failed by validation/dedup
  /// Malformed observations dropped under ValidationPolicy::kFilter. A
  /// rising rate means upstream data quality is degrading — unlike
  /// observations_deduplicated, which is normal retry/multi-worker noise;
  /// the two were one conflated counter before and alerting on it was
  /// impossible.
  uint64_t observations_filtered = 0;
  /// Well-formed duplicate road observations resolved by the DedupPolicy.
  uint64_t observations_deduplicated = 0;
  uint64_t estimation_failures = 0;    ///< estimator/monitor errors absorbed
};

class ServingSession {
 public:
  /// One served slot. `monitor` holds the estimate + alerting output; the
  /// remaining fields describe how degraded the serving of this slot was.
  struct SlotReport {
    uint64_t slot = 0;
    OnlineTrafficMonitor::SlotReport monitor;
    /// True when this is the last good estimate carried forward, not a
    /// fresh one; `monitor.new_alerts` is empty in that case.
    bool stale = false;
    /// Consecutive carried-forward slots ending at this one (0 = fresh).
    uint32_t stale_slots = 0;
    /// True when this report is the idempotent re-delivery of a slot
    /// already served.
    bool duplicate = false;
    size_t observations_used = 0;
    /// Observations removed from this batch (validation-filtered plus
    /// deduplicated; the cumulative ServingStats keep the two apart).
    size_t observations_dropped = 0;
  };

  /// The estimator must outlive the session.
  static Result<ServingSession> Create(const TrafficSpeedEstimator* estimator,
                                       const ServingOptions& opts = {});

  /// Ingests one slot of crowd observations and serves the estimate.
  ///
  /// Error statuses (all graceful — the session stays usable):
  ///   InvalidArgument      malformed batch under kStrict, or duplicate
  ///                        roads under DedupPolicy::kReject; the slot is
  ///                        NOT consumed, a corrected batch may be re-sent.
  ///   FailedPrecondition   stale (out-of-order) slot arrival, or an
  ///                        empty/failed slot with no carry-forward
  ///                        available (none yet, or staleness limit hit).
  Result<SlotReport> Ingest(uint64_t slot,
                            const std::vector<SeedSpeed>& observations);

  /// Ingest with an externally created slot-trace context (the ingest
  /// front-end passes the one whose queue-wait stage it already recorded).
  /// With a flight recorder attached and ctx null, a local context is
  /// created so direct Ingest callers still get full stage attribution;
  /// detached sessions ignore ctx entirely.
  Result<SlotReport> Ingest(uint64_t slot,
                            const std::vector<SeedSpeed>& observations,
                            obs::SlotTraceContext* ctx);

  /// Point-in-time snapshot of the cumulative degradation counters.
  ServingStats stats() const;

  /// Seqlock snapshot read path; null unless options().publish_snapshots.
  /// Readers on any thread call snapshot_publisher()->Read() and never
  /// block Ingest. The pointer is stable for the session's lifetime.
  const SpeedSnapshotPublisher* snapshot_publisher() const {
    return snapshot_.get();
  }

  /// Latency SLO engine; null unless options().observability.slo has a
  /// budget enabled. Single-threaded contract: read from the serving
  /// (drain) thread, like stats().
  const obs::SloEngine* slo() const { return slo_.get(); }

  /// True once any slot has been served (fresh or carried forward).
  bool has_estimate() const { return has_report_; }
  /// Last served report. Precondition: has_estimate().
  const SlotReport& last_report() const { return last_report_; }

  /// Roads currently under an active alert.
  std::vector<RoadId> ActiveAlerts() const { return monitor_.ActiveAlerts(); }

  const ServingOptions& options() const { return opts_; }

 private:
  ServingSession(const TrafficSpeedEstimator* estimator,
                 const ServingOptions& opts);

  /// Validates + deduplicates one batch. On success returns the sanitized
  /// observations and sets *filtered / *deduplicated to the number removed
  /// by validation and by dedup respectively.
  Result<std::vector<SeedSpeed>> Sanitize(
      const std::vector<SeedSpeed>& observations, size_t* filtered,
      size_t* deduplicated) const;

  /// The Ingest body shared by both public overloads (ctx may be null).
  Result<SlotReport> DoIngest(uint64_t slot,
                              const std::vector<SeedSpeed>& observations,
                              obs::SlotTraceContext* ctx);

  /// Serves the last good estimate for `slot` with the staleness flag, or
  /// explains why it cannot.
  Result<SlotReport> CarryForward(uint64_t slot, size_t dropped,
                                  obs::SlotTraceContext* ctx);

  /// Atomic backing store for ServingStats; field order matches. Heap-held
  /// so the session stays movable (Result<ServingSession> moves it out of
  /// Create) while the atomics themselves never move.
  struct AtomicStats {
    std::atomic<uint64_t> slots_estimated{0};
    std::atomic<uint64_t> slots_carried_forward{0};
    std::atomic<uint64_t> duplicate_slots{0};
    std::atomic<uint64_t> out_of_order_slots{0};
    std::atomic<uint64_t> rejected_batches{0};
    std::atomic<uint64_t> observations_filtered{0};
    std::atomic<uint64_t> observations_deduplicated{0};
    std::atomic<uint64_t> estimation_failures{0};
  };

  /// Bumps a ServingStats field and its registry mirror in one call, both
  /// through atomics, so the struct snapshot and the exported counter agree
  /// at quiescence from any thread — tests/obs_test.cc and
  /// tests/ingest_test.cc pin this equivalence.
  void Count(std::atomic<uint64_t>& field, obs::Counter* mirror,
             uint64_t n = 1) {
    field.fetch_add(n, std::memory_order_relaxed);
    obs::Add(mirror, n);
  }

  /// Publishes the last served report through the seqlock snapshot (no-op
  /// when snapshots are off); records the kPublish flight stage when a
  /// recorder is attached.
  void PublishSnapshot(obs::SlotTraceContext* ctx);

  const TrafficSpeedEstimator* estimator_;
  ServingOptions opts_;
  OnlineTrafficMonitor monitor_;
  std::unique_ptr<AtomicStats> stats_;
  std::unique_ptr<SpeedSnapshotPublisher> snapshot_;
  /// Latency SLO engine; non-null iff observability.slo.enabled(). Heap-held
  /// like stats_ so the session stays movable.
  std::unique_ptr<obs::SloEngine> slo_;
  bool has_report_ = false;
  SlotReport last_report_;
  uint32_t stale_streak_ = 0;
  /// Cross-slot BP warm-start state (used only when opts_.warm_start);
  /// invalidated whenever slot continuity breaks.
  TrendInferenceState trend_state_;

  // Metric handles; all null when no registry is configured.
  obs::Counter* m_slots_estimated_ = nullptr;
  obs::Counter* m_slots_carried_forward_ = nullptr;
  obs::Counter* m_duplicate_slots_ = nullptr;
  obs::Counter* m_out_of_order_slots_ = nullptr;
  obs::Counter* m_rejected_batches_ = nullptr;
  obs::Counter* m_observations_filtered_ = nullptr;
  obs::Counter* m_observations_deduplicated_ = nullptr;
  obs::Counter* m_estimation_failures_ = nullptr;
  obs::Counter* m_slow_ingests_ = nullptr;
  obs::Histogram* m_ingest_latency_ = nullptr;
  obs::Gauge* m_staleness_ = nullptr;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_SERVING_H_
