#include "core/routing.h"

#include <algorithm>
#include <queue>

#include "roadnet/shortest_path.h"
#include "util/logging.h"

namespace trendspeed {

Result<double> PathTravelTime(const RoadNetwork& net,
                              const std::vector<double>& speeds_kmh,
                              const std::vector<RoadId>& path) {
  if (speeds_kmh.size() != net.num_roads()) {
    return Status::InvalidArgument("speeds size mismatch");
  }
  if (path.empty()) return Status::InvalidArgument("empty path");
  double seconds = 0.0;
  for (size_t i = 0; i < path.size(); ++i) {
    RoadId r = path[i];
    if (r >= net.num_roads()) {
      return Status::InvalidArgument("path road out of range");
    }
    if (i > 0 && net.road(path[i - 1]).to != net.road(r).from) {
      return Status::InvalidArgument("path is not contiguous");
    }
    if (speeds_kmh[r] <= 0.0) {
      return Status::InvalidArgument("non-positive speed on path");
    }
    seconds += net.road(r).length_m / (speeds_kmh[r] / 3.6);
  }
  return seconds;
}

Result<PathEta> PathTravelTime(const RoadNetwork& net,
                               const SpeedSnapshot& snap,
                               const std::vector<RoadId>& path) {
  TS_ASSIGN_OR_RETURN(double seconds,
                      PathTravelTime(net, snap.speed_kmh, path));
  PathEta eta;
  eta.travel_seconds = seconds;
  eta.stale = snap.stale;
  eta.stale_slots = snap.stale_slots;
  eta.slot = snap.slot;
  return eta;
}

Result<RouteResult> FastestRoute(const RoadNetwork& net,
                                 const std::vector<double>& speeds_kmh,
                                 NodeId from, NodeId to) {
  if (speeds_kmh.size() != net.num_roads()) {
    return Status::InvalidArgument("speeds size mismatch");
  }
  if (from >= net.num_nodes() || to >= net.num_nodes()) {
    return Status::InvalidArgument("node out of range");
  }
  const double kInf = 1e300;
  std::vector<double> dist(net.num_nodes(), kInf);
  std::vector<RoadId> via(net.num_nodes(), kInvalidRoad);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[from] = 0.0;
  pq.emplace(0.0, from);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (RoadId r : net.OutRoads(u)) {
      double v_kmh = speeds_kmh[r];
      if (v_kmh <= 0.0) continue;  // impassable
      NodeId w = net.road(r).to;
      double nd = d + net.road(r).length_m / (v_kmh / 3.6);
      if (nd < dist[w]) {
        dist[w] = nd;
        via[w] = r;
        pq.emplace(nd, w);
      }
    }
  }
  if (dist[to] >= kInf) return Status::NotFound("target unreachable");
  RouteResult result;
  result.travel_seconds = dist[to];
  NodeId cur = to;
  while (cur != from) {
    RoadId r = via[cur];
    result.roads.push_back(r);
    result.length_m += net.road(r).length_m;
    cur = net.road(r).from;
  }
  std::reverse(result.roads.begin(), result.roads.end());
  return result;
}

Result<RouteResult> FastestRoute(const RoadNetwork& net,
                                 const SpeedSnapshot& snap, NodeId from,
                                 NodeId to) {
  TS_ASSIGN_OR_RETURN(RouteResult result,
                      FastestRoute(net, snap.speed_kmh, from, to));
  result.stale = snap.stale;
  result.stale_slots = snap.stale_slots;
  result.slot = snap.slot;
  return result;
}

Result<double> CongestionRatio(const RoadNetwork& net,
                               const std::vector<double>& speeds_kmh,
                               NodeId from, NodeId to) {
  TS_ASSIGN_OR_RETURN(RouteResult current,
                      FastestRoute(net, speeds_kmh, from, to));
  std::vector<double> free_flow(net.num_roads());
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    free_flow[r] = net.road(r).free_flow_kmh;
  }
  TS_ASSIGN_OR_RETURN(RouteResult base,
                      FastestRoute(net, free_flow, from, to));
  if (base.travel_seconds <= 0.0) {
    // Both routes are zero-length exactly when from == to (free-flow speeds
    // are positive, so any real road contributes time): the trip exists and
    // is trivially uncongested. Only a zero-length base under a *non*-zero
    // current route would be an internal inconsistency.
    if (current.travel_seconds <= 0.0) return 1.0;
    return Status::Internal("degenerate free-flow route");
  }
  return current.travel_seconds / base.travel_seconds;
}

Result<CongestionResult> CongestionRatio(const RoadNetwork& net,
                                         const SpeedSnapshot& snap,
                                         NodeId from, NodeId to) {
  TS_ASSIGN_OR_RETURN(double ratio,
                      CongestionRatio(net, snap.speed_kmh, from, to));
  CongestionResult result;
  result.ratio = ratio;
  result.stale = snap.stale;
  result.stale_slots = snap.stale_slots;
  result.slot = snap.slot;
  return result;
}

}  // namespace trendspeed
