#include "core/config.h"

#include <cmath>

namespace trendspeed {

Status PipelineConfig::Validate() const {
  if (corr.min_same_prob < 0.5 || corr.min_same_prob >= 1.0) {
    return Status::InvalidArgument("corr.min_same_prob must be in [0.5, 1)");
  }
  if (corr.max_hops == 0) {
    return Status::InvalidArgument("corr.max_hops must be positive");
  }
  if (influence.max_hops == 0) {
    return Status::InvalidArgument("influence.max_hops must be positive");
  }
  if (influence.min_influence <= 0.0 || influence.min_influence >= 1.0) {
    return Status::InvalidArgument("influence.min_influence must be in (0,1)");
  }
  if (propagation.max_layers == 0) {
    return Status::InvalidArgument("propagation.max_layers must be positive");
  }
  if (speed.ridge_lambda < 0.0) {
    return Status::InvalidArgument("speed.ridge_lambda must be >= 0");
  }
  if (trend.bp.damping < 0.0 || trend.bp.damping >= 1.0) {
    return Status::InvalidArgument("trend.bp.damping must be in [0, 1)");
  }
  if (trend.bp.max_iters == 0) {
    return Status::InvalidArgument("trend.bp.max_iters must be positive");
  }
  if (!(trend.bp.tol >= 0.0)) {  // also rejects NaN
    return Status::InvalidArgument("trend.bp.tol must be >= 0");
  }
  if (!(trend.bp.warm_threshold >= 0.0)) {  // also rejects NaN
    return Status::InvalidArgument("trend.bp.warm_threshold must be >= 0");
  }
  // Guards configs assembled from raw ints (deserialization, FFI): the
  // kernel knob must be one of the declared enumerators.
  if (trend.bp.kernel != BpKernel::kScalar &&
      trend.bp.kernel != BpKernel::kSimd &&
      trend.bp.kernel != BpKernel::kAuto) {
    return Status::InvalidArgument(
        "trend.bp.kernel must be scalar, simd, or auto");
  }
  // Backfill knobs: a hop count beyond any plausible network diameter is a
  // units mistake, and `!(a > b)` style keeps NaN-poisoned damping invalid.
  constexpr uint32_t kMaxBackfillHops = 64;
  if (evidence_backfill_hops > kMaxBackfillHops) {
    return Status::InvalidArgument(
        "evidence_backfill_hops implausibly large");
  }
  if (!(evidence_backfill_damping > 0.0) ||
      !(evidence_backfill_damping <= 1.0)) {
    return Status::InvalidArgument(
        "evidence_backfill_damping must be in (0, 1]");
  }
  // Parallel knobs: 0 means "auto"; explicit values beyond any plausible
  // machine are almost certainly a units mistake, not a 5000-core box.
  constexpr uint32_t kMaxThreads = 4096;
  if (trend.bp.num_threads > kMaxThreads) {
    return Status::InvalidArgument("trend.bp.num_threads implausibly large");
  }
  if (seed_selection.num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        "seed_selection.num_threads implausibly large");
  }
  if (seed_selection.batch > (size_t{1} << 20)) {
    return Status::InvalidArgument("seed_selection.batch implausibly large");
  }
  if (seed_selection.min_parallel_candidates == 0) {
    return Status::InvalidArgument(
        "seed_selection.min_parallel_candidates must be positive");
  }
  TS_RETURN_NOT_OK(sharding.Validate());
  if (sharding.enabled() && trend.engine != TrendEngine::kBeliefPropagation) {
    return Status::InvalidArgument(
        "sharding requires the belief-propagation trend engine");
  }
  if (!(observability.slow_ingest_ms > 0.0) ||
      !std::isfinite(observability.slow_ingest_ms)) {  // also rejects NaN
    return Status::InvalidArgument(
        "observability.slow_ingest_ms must be positive and finite");
  }
  if (observability.instrument_thread_pool &&
      observability.metrics == nullptr) {
    return Status::InvalidArgument(
        "observability.instrument_thread_pool requires a metrics registry");
  }
  // obs is the bottom layer and cannot return Status itself; wrap its
  // static reason string here.
  if (const char* msg = observability.slo.Invalid()) {
    return Status::InvalidArgument(std::string("observability.slo: ") + msg);
  }
  if (observability.slo.enabled() && observability.flight == nullptr) {
    return Status::InvalidArgument(
        "observability.slo budgets require observability.flight (the SLO "
        "engine consumes flight-recorder slot timelines)");
  }
  return Status::OK();
}

}  // namespace trendspeed
