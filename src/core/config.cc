#include "core/config.h"

namespace trendspeed {

Status PipelineConfig::Validate() const {
  if (corr.min_same_prob < 0.5 || corr.min_same_prob >= 1.0) {
    return Status::InvalidArgument("corr.min_same_prob must be in [0.5, 1)");
  }
  if (corr.max_hops == 0) {
    return Status::InvalidArgument("corr.max_hops must be positive");
  }
  if (influence.max_hops == 0) {
    return Status::InvalidArgument("influence.max_hops must be positive");
  }
  if (influence.min_influence <= 0.0 || influence.min_influence >= 1.0) {
    return Status::InvalidArgument("influence.min_influence must be in (0,1)");
  }
  if (propagation.max_layers == 0) {
    return Status::InvalidArgument("propagation.max_layers must be positive");
  }
  if (speed.ridge_lambda < 0.0) {
    return Status::InvalidArgument("speed.ridge_lambda must be >= 0");
  }
  if (trend.bp.damping < 0.0 || trend.bp.damping >= 1.0) {
    return Status::InvalidArgument("trend.bp.damping must be in [0, 1)");
  }
  return Status::OK();
}

}  // namespace trendspeed
