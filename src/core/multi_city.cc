#include "core/multi_city.h"

namespace trendspeed {

Result<MultiCityServer> MultiCityServer::Create(
    const std::vector<CitySpec>& cities) {
  if (cities.empty()) {
    return Status::InvalidArgument("multi-city server needs at least one city");
  }
  MultiCityServer server;
  server.names_.reserve(cities.size());
  server.sessions_.reserve(cities.size());
  for (const CitySpec& spec : cities) {
    if (spec.name.empty()) {
      return Status::InvalidArgument("city name must be non-empty");
    }
    if (spec.estimator == nullptr) {
      return Status::InvalidArgument("city estimator must be non-null");
    }
    for (const std::string& existing : server.names_) {
      if (existing == spec.name) {
        return Status::InvalidArgument("duplicate city name: " + spec.name);
      }
    }
    TS_ASSIGN_OR_RETURN(ServingSession session,
                        ServingSession::Create(spec.estimator, spec.serving));
    server.names_.push_back(spec.name);
    server.sessions_.push_back(std::move(session));
  }
  return server;
}

size_t MultiCityServer::Find(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return kNotFound;
}

Result<ServingSession::SlotReport> MultiCityServer::Ingest(
    std::string_view city, uint64_t slot,
    const std::vector<SeedSpeed>& observations) {
  size_t idx = Find(city);
  if (idx == kNotFound) {
    return Status::InvalidArgument("unknown city: " + std::string(city));
  }
  return Ingest(idx, slot, observations);
}

Result<ServingSession::SlotReport> MultiCityServer::Ingest(
    size_t city, uint64_t slot, const std::vector<SeedSpeed>& observations) {
  if (city >= sessions_.size()) {
    return Status::InvalidArgument("city index out of range");
  }
  return sessions_[city].Ingest(slot, observations);
}

ServingStats MultiCityServer::TotalStats() const {
  ServingStats total;
  for (const ServingSession& session : sessions_) {
    ServingStats s = session.stats();
    total.slots_estimated += s.slots_estimated;
    total.slots_carried_forward += s.slots_carried_forward;
    total.duplicate_slots += s.duplicate_slots;
    total.out_of_order_slots += s.out_of_order_slots;
    total.rejected_batches += s.rejected_batches;
    total.observations_filtered += s.observations_filtered;
    total.observations_deduplicated += s.observations_deduplicated;
    total.estimation_failures += s.estimation_failures;
  }
  return total;
}

}  // namespace trendspeed
