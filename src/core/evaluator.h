// Experiment harness: runs any estimation method over a dataset's held-out
// test slots against ground truth, producing the metrics the paper's tables
// and figures report.

#ifndef TRENDSPEED_CORE_EVALUATOR_H_
#define TRENDSPEED_CORE_EVALUATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "io/dataset.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"

namespace trendspeed {

/// Any per-slot estimator: (slot, seed speeds) -> all-road speeds.
using EstimateFn = std::function<Result<std::vector<double>>(
    uint64_t, const std::vector<SeedSpeed>&)>;

/// A named method under evaluation.
struct MethodAdapter {
  std::string name;
  EstimateFn estimate;
};

struct EvalOptions {
  /// Relative error above this counts toward the error rate.
  double error_rate_tau = 0.2;
  /// Gaussian noise on the crowdsourced seed speeds (worker imprecision).
  double seed_noise_kmh = 1.5;
  /// Evaluate every `stride`-th test slot (1 = all).
  uint32_t slot_stride = 3;
  uint64_t rng_seed = 99;
};

struct EvalResult {
  SpeedMetrics metrics;          ///< over non-seed roads only
  double seconds_total = 0.0;    ///< estimation wall clock
  double ms_per_slot = 0.0;
  size_t slots = 0;
};

/// Drives evaluations over one dataset.
class Evaluator {
 public:
  explicit Evaluator(const Dataset* dataset);

  /// Test slots honouring the stride.
  std::vector<uint64_t> TestSlots(uint32_t stride) const;

  /// Crowdsourced observations of `seeds` at `slot` (truth + noise).
  std::vector<SeedSpeed> ObserveSeeds(uint64_t slot,
                                      const std::vector<RoadId>& seeds,
                                      double noise_kmh, Rng* rng) const;

  /// True trends at `slot` (vs the dataset's own history).
  std::vector<int> TrueTrends(uint64_t slot) const;

  /// Runs `method` over the test slots with the given seed set.
  Result<EvalResult> Run(const MethodAdapter& method,
                         const std::vector<RoadId>& seeds,
                         const EvalOptions& opts) const;

  /// Repeats Run over `repetitions` observation-noise seeds and reports the
  /// spread — the error bars behind a figure point.
  struct RepeatedResult {
    double mae_mean = 0.0;
    double mae_stddev = 0.0;
    double mape_mean = 0.0;
    double mape_stddev = 0.0;
    size_t repetitions = 0;
  };
  Result<RepeatedResult> RunRepeated(const MethodAdapter& method,
                                     const std::vector<RoadId>& seeds,
                                     const EvalOptions& opts,
                                     size_t repetitions) const;

  /// Trend-inference accuracy of the pipeline's Step 1 over non-seed roads.
  Result<double> RunTrendAccuracy(const TrafficSpeedEstimator& estimator,
                                  const std::vector<RoadId>& seeds,
                                  const EvalOptions& opts) const;

  const Dataset& dataset() const { return *dataset_; }

 private:
  const Dataset* dataset_;
};

/// Wraps the pipeline and each baseline into MethodAdapters sharing one
/// trained state. All returned adapters reference `estimator` and the
/// baselines constructed inside; the returned holder keeps them alive.
struct MethodSuite {
  std::vector<MethodAdapter> methods;
  /// Opaque owners for the baseline instances.
  std::vector<std::shared_ptr<void>> owners;
};
Result<MethodSuite> BuildMethodSuite(const Dataset& dataset,
                                     const TrafficSpeedEstimator& estimator,
                                     bool include_matrix_completion = true);

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_EVALUATOR_H_
