#include "core/model_io.h"

#include "util/binary_io.h"
#include "util/csv.h"

namespace trendspeed {

namespace {
constexpr uint32_t kModelVersion = 1;

void PutConfig(const PipelineConfig& c, BinaryWriter* w) {
  w->PutTag("CONF", 1);
  w->PutU8(static_cast<uint8_t>(c.trend.engine));
  w->PutU32(c.trend.bp.max_iters);
  w->PutF64(c.trend.bp.damping);
  w->PutF64(c.trend.bp.tol);
  w->PutF64(c.trend.edge_compat_power);
  w->PutF64(c.trend.prior_pseudo_count);
  w->PutU8(c.propagation.mode == AggregationMode::kInfluence ? 0 : 1);
  w->PutU32(c.propagation.max_layers);
  w->PutU32(c.propagation.max_spatial_layers);
  w->PutF64(c.propagation.spatial_discount);
  w->PutU8(c.use_trend_evidence ? 1 : 0);
}

Result<PipelineConfig> GetConfig(BinaryReader* r) {
  TS_ASSIGN_OR_RETURN(uint32_t version, r->ExpectTag("CONF"));
  if (version != 1) {
    return Status::InvalidArgument("unsupported config version");
  }
  PipelineConfig c;
  TS_ASSIGN_OR_RETURN(uint8_t engine, r->GetU8());
  if (engine > static_cast<uint8_t>(TrendEngine::kPriorOnly)) {
    return Status::InvalidArgument("corrupt config: bad trend engine");
  }
  c.trend.engine = static_cast<TrendEngine>(engine);
  TS_ASSIGN_OR_RETURN(c.trend.bp.max_iters, r->GetU32());
  TS_ASSIGN_OR_RETURN(c.trend.bp.damping, r->GetF64());
  TS_ASSIGN_OR_RETURN(c.trend.bp.tol, r->GetF64());
  TS_ASSIGN_OR_RETURN(c.trend.edge_compat_power, r->GetF64());
  TS_ASSIGN_OR_RETURN(c.trend.prior_pseudo_count, r->GetF64());
  TS_ASSIGN_OR_RETURN(uint8_t mode, r->GetU8());
  c.propagation.mode =
      mode == 0 ? AggregationMode::kInfluence : AggregationMode::kLayered;
  TS_ASSIGN_OR_RETURN(c.propagation.max_layers, r->GetU32());
  TS_ASSIGN_OR_RETURN(c.propagation.max_spatial_layers, r->GetU32());
  TS_ASSIGN_OR_RETURN(c.propagation.spatial_discount, r->GetF64());
  TS_ASSIGN_OR_RETURN(uint8_t evidence, r->GetU8());
  c.use_trend_evidence = evidence != 0;
  return c;
}

}  // namespace

std::string SerializeTrainedModel(const TrafficSpeedEstimator& estimator) {
  BinaryWriter writer;
  writer.PutTag("TSPD", kModelVersion);
  writer.PutU64(estimator.network().num_roads());
  PutConfig(estimator.config(), &writer);
  estimator.correlation_graph().Serialize(&writer);
  estimator.influence().Serialize(&writer);
  estimator.speed_model().Serialize(&writer);
  return writer.buffer();
}

Status SaveTrainedModel(const TrafficSpeedEstimator& estimator,
                        const std::string& path) {
  return WriteStringToFile(path, SerializeTrainedModel(estimator));
}

Result<TrafficSpeedEstimator> DeserializeTrainedModel(const RoadNetwork* net,
                                                      const HistoricalDb* db,
                                                      std::string bytes) {
  if (net == nullptr || db == nullptr) {
    return Status::InvalidArgument("null network or history");
  }
  BinaryReader reader(std::move(bytes));
  TS_ASSIGN_OR_RETURN(uint32_t version, reader.ExpectTag("TSPD"));
  if (version != kModelVersion) {
    return Status::InvalidArgument("unsupported model file version");
  }
  TS_ASSIGN_OR_RETURN(uint64_t num_roads, reader.GetU64());
  if (num_roads != net->num_roads()) {
    return Status::InvalidArgument(
        "model was trained on a different network (road count mismatch)");
  }
  TS_ASSIGN_OR_RETURN(PipelineConfig config, GetConfig(&reader));
  TS_ASSIGN_OR_RETURN(CorrelationGraph graph,
                      CorrelationGraph::Deserialize(&reader));
  TS_ASSIGN_OR_RETURN(InfluenceModel influence,
                      InfluenceModel::Deserialize(&reader));
  TS_ASSIGN_OR_RETURN(HierarchicalSpeedModel speed_model,
                      HierarchicalSpeedModel::Deserialize(&reader));
  return TrafficSpeedEstimator::FromComponents(
      net, db, config, std::move(graph), std::move(influence),
      std::move(speed_model));
}

Result<TrafficSpeedEstimator> LoadTrainedModel(const RoadNetwork* net,
                                               const HistoricalDb* db,
                                               const std::string& path) {
  TS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DeserializeTrainedModel(net, db, std::move(bytes));
}

}  // namespace trendspeed
