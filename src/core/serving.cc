#include "core/serving.h"

#include <cmath>
#include <string>

#include "obs/catalog.h"
#include "obs/clock.h"
#include "util/timer.h"

namespace trendspeed {

namespace {

/// Records the enclosing Ingest call's latency on destruction, whichever
/// return path is taken, and bumps the slow-ingest counter past the
/// configured threshold. All-null handles make this a no-op.
class IngestLatencyScope {
 public:
  IngestLatencyScope(obs::Histogram* latency_ms, obs::Counter* slow,
                     double slow_ingest_ms)
      : latency_ms_(latency_ms), slow_(slow), slow_ingest_ms_(slow_ingest_ms) {}
  ~IngestLatencyScope() {
    if (latency_ms_ == nullptr && slow_ == nullptr) return;
    double ms = timer_.ElapsedMillis();
    obs::Observe(latency_ms_, ms);
    if (ms > slow_ingest_ms_) obs::Add(slow_);
  }

 private:
  obs::Histogram* latency_ms_;
  obs::Counter* slow_;
  double slow_ingest_ms_;
  WallTimer timer_;
};

}  // namespace

Status IngestQueueOptions::Validate() const {
  // The queue rounds capacity up to a power of two; bound the request so a
  // fat-fingered capacity cannot ask for a multi-GB ring.
  if (capacity > (size_t{1} << 30)) {
    return Status::InvalidArgument(
        "ingest_queue.capacity must be <= 2^30 (0 disables the queue)");
  }
  return Status::OK();
}

Status ProductOptions::Validate() const {
  if (!enabled) return Status::OK();
  if (profile_buckets_per_day == 0) {
    return Status::InvalidArgument(
        "products.profile_buckets_per_day must be positive");
  }
  if (profile_buckets_per_day > 86400) {
    return Status::InvalidArgument(
        "products.profile_buckets_per_day must be <= 86400 (sub-second "
        "time-of-day buckets are a config mistake)");
  }
  if (profile_min_samples == 0) {
    return Status::InvalidArgument(
        "products.profile_min_samples must be positive (a zero-sample cell "
        "has no mean to blend)");
  }
  if (blend_full_stale_slots == 0) {
    return Status::InvalidArgument(
        "products.blend_full_stale_slots must be positive");
  }
  if (eta_cache_capacity == 0) {
    return Status::InvalidArgument(
        "products.eta_cache_capacity must be positive");
  }
  return Status::OK();
}

Status ServingOptions::Validate() const {
  // `!(a < b)` style keeps NaN-poisoned options invalid too.
  if (!(monitor.ewma_alpha > 0.0) || !(monitor.ewma_alpha <= 1.0)) {
    return Status::InvalidArgument("monitor.ewma_alpha must be in (0, 1]");
  }
  if (!(monitor.alert_deviation < monitor.clear_deviation)) {
    return Status::InvalidArgument(
        "monitor.alert_deviation must be below monitor.clear_deviation");
  }
  if (!(monitor.congested_deviation < 0.0)) {
    return Status::InvalidArgument(
        "monitor.congested_deviation must be negative");
  }
  if (monitor.alert_after_slots == 0) {
    return Status::InvalidArgument("monitor.alert_after_slots must be positive");
  }
  if (!(max_speed_kmh > 0.0) || !std::isfinite(max_speed_kmh)) {
    return Status::InvalidArgument("max_speed_kmh must be positive and finite");
  }
  if (!(observability.slow_ingest_ms > 0.0) ||
      !std::isfinite(observability.slow_ingest_ms)) {
    return Status::InvalidArgument(
        "observability.slow_ingest_ms must be positive and finite");
  }
  if (const char* msg = observability.slo.Invalid()) {
    return Status::InvalidArgument(std::string("observability.slo: ") + msg);
  }
  if (observability.slo.enabled() && observability.flight == nullptr) {
    return Status::InvalidArgument(
        "observability.slo budgets require observability.flight (the SLO "
        "engine consumes flight-recorder slot timelines)");
  }
  TS_RETURN_NOT_OK(ingest_queue.Validate());
  TS_RETURN_NOT_OK(products.Validate());
  if (products.enabled && !publish_snapshots) {
    return Status::InvalidArgument(
        "products.enabled requires publish_snapshots (the product layer "
        "reads the seqlock snapshot; there is nothing to serve without it)");
  }
  return Status::OK();
}

ServingSession::ServingSession(const TrafficSpeedEstimator* estimator,
                               const ServingOptions& opts)
    : estimator_(estimator),
      opts_(opts),
      monitor_(estimator, opts.monitor),
      stats_(std::make_unique<AtomicStats>()) {
  // Register handles once; every hot-path record is then a pointer check.
  obs::MetricsRegistry* reg = opts_.observability.metrics;
  if (opts_.publish_snapshots) {
    snapshot_ = std::make_unique<SpeedSnapshotPublisher>(
        estimator->network().num_roads());
    snapshot_->AttachMetrics(reg);
  }
  m_slots_estimated_ = obs::GetCounter(reg, obs::kServingSlotsEstimatedTotal);
  m_slots_carried_forward_ =
      obs::GetCounter(reg, obs::kServingSlotsCarriedForwardTotal);
  m_duplicate_slots_ = obs::GetCounter(reg, obs::kServingDuplicateSlotsTotal);
  m_out_of_order_slots_ =
      obs::GetCounter(reg, obs::kServingOutOfOrderSlotsTotal);
  m_rejected_batches_ = obs::GetCounter(reg, obs::kServingRejectedBatchesTotal);
  m_observations_filtered_ =
      obs::GetCounter(reg, obs::kServingObservationsFilteredTotal);
  m_observations_deduplicated_ =
      obs::GetCounter(reg, obs::kServingObservationsDeduplicatedTotal);
  m_estimation_failures_ =
      obs::GetCounter(reg, obs::kServingEstimationFailuresTotal);
  m_slow_ingests_ = obs::GetCounter(reg, obs::kServingSlowIngestsTotal);
  m_ingest_latency_ = obs::GetHistogram(reg, obs::kServingIngestLatencyMs);
  m_staleness_ = obs::GetGauge(reg, obs::kServingStalenessSlots);
  if (opts_.observability.flight != nullptr) {
    opts_.observability.flight->AttachMetrics(reg);
  }
  if (opts_.observability.slo.enabled()) {
    // Validate() already required flight != nullptr here.
    slo_ = std::make_unique<obs::SloEngine>(opts_.observability.slo,
                                            opts_.observability.flight);
    slo_->AttachMetrics(reg);
  }
}

Result<ServingSession> ServingSession::Create(
    const TrafficSpeedEstimator* estimator, const ServingOptions& opts) {
  if (estimator == nullptr) {
    return Status::InvalidArgument("null estimator");
  }
  TS_RETURN_NOT_OK(opts.Validate());
  return ServingSession(estimator, opts);
}

Result<std::vector<SeedSpeed>> ServingSession::Sanitize(
    const std::vector<SeedSpeed>& observations, size_t* filtered,
    size_t* deduplicated) const {
  const size_t num_roads = estimator_->network().num_roads();
  std::vector<SeedSpeed> out;
  out.reserve(observations.size());
  std::vector<size_t> pos(num_roads, SIZE_MAX);  // road -> index in `out`
  std::vector<uint32_t> merged;  // kMean: observations merged per entry

  for (const SeedSpeed& s : observations) {
    const char* problem = nullptr;
    if (s.road >= num_roads) {
      problem = "road id out of range";
    } else if (!std::isfinite(s.speed_kmh)) {
      problem = "speed is not finite";
    } else if (s.speed_kmh <= 0.0) {
      problem = "speed is not positive";
    } else if (s.speed_kmh > opts_.max_speed_kmh) {
      problem = "speed exceeds max_speed_kmh";
    }
    if (problem != nullptr) {
      if (opts_.validation == ValidationPolicy::kStrict) {
        return Status::InvalidArgument("malformed observation for road " +
                                       std::to_string(s.road) + ": " +
                                       problem);
      }
      ++*filtered;
      continue;
    }
    if (pos[s.road] != SIZE_MAX) {
      switch (opts_.dedup) {
        case DedupPolicy::kReject:
          return Status::InvalidArgument(
              "duplicate observation for road " + std::to_string(s.road));
        case DedupPolicy::kKeepFirst:
          break;
        case DedupPolicy::kKeepLast:
          out[pos[s.road]].speed_kmh = s.speed_kmh;
          break;
        case DedupPolicy::kMean:
          out[pos[s.road]].speed_kmh += s.speed_kmh;
          ++merged[pos[s.road]];
          break;
      }
      ++*deduplicated;
      continue;
    }
    pos[s.road] = out.size();
    out.push_back(s);
    if (opts_.dedup == DedupPolicy::kMean) merged.push_back(1);
  }
  if (opts_.dedup == DedupPolicy::kMean) {
    for (size_t i = 0; i < out.size(); ++i) {
      if (merged[i] > 1) out[i].speed_kmh /= merged[i];
    }
  }
  return out;
}

Result<ServingSession::SlotReport> ServingSession::CarryForward(
    uint64_t slot, size_t dropped, obs::SlotTraceContext* ctx) {
  // Whether the carry-forward succeeds or is refused, no inference ran for
  // this slot, so the stored fixed point no longer matches the stream: the
  // next estimated slot must start cold.
  trend_state_.Invalidate();
  if (!has_report_) {
    return Status::FailedPrecondition(
        "no estimate available to carry forward");
  }
  if (stale_streak_ >= opts_.max_stale_slots) {
    return Status::FailedPrecondition(
        "estimate too stale: already " + std::to_string(stale_streak_) +
        " consecutive carried-forward slots");
  }
  Count(stats_->slots_carried_forward, m_slots_carried_forward_);
  ++stale_streak_;
  obs::Set(m_staleness_, static_cast<double>(stale_streak_));
  last_report_.slot = slot;
  last_report_.stale = true;
  last_report_.stale_slots = stale_streak_;
  last_report_.duplicate = false;
  // Alerts belong to the slot they were raised in; a re-served estimate
  // raises nothing new.
  last_report_.monitor.new_alerts.clear();
  last_report_.observations_used = 0;
  last_report_.observations_dropped = dropped;
  if (slo_ != nullptr) slo_->NoteDegradation("carry_forward", slot);
  PublishSnapshot(ctx);
  return last_report_;
}

void ServingSession::PublishSnapshot(obs::SlotTraceContext* ctx) {
  if (snapshot_ == nullptr || !has_report_) return;
  obs::FlightSpan span(opts_.observability.flight, last_report_.slot,
                       obs::FlightStage::kPublish, obs::kNoShard, ctx);
  const SpeedEstimateResult& speeds = last_report_.monitor.estimate.speeds;
  snapshot_->Publish(last_report_.slot, speeds.speed_kmh, speeds.deviation,
                     last_report_.stale_slots,
                     last_report_.monitor.mean_speed_kmh);
}

ServingStats ServingSession::stats() const {
  ServingStats out;
  out.slots_estimated =
      stats_->slots_estimated.load(std::memory_order_relaxed);
  out.slots_carried_forward =
      stats_->slots_carried_forward.load(std::memory_order_relaxed);
  out.duplicate_slots =
      stats_->duplicate_slots.load(std::memory_order_relaxed);
  out.out_of_order_slots =
      stats_->out_of_order_slots.load(std::memory_order_relaxed);
  out.rejected_batches =
      stats_->rejected_batches.load(std::memory_order_relaxed);
  out.observations_filtered =
      stats_->observations_filtered.load(std::memory_order_relaxed);
  out.observations_deduplicated =
      stats_->observations_deduplicated.load(std::memory_order_relaxed);
  out.estimation_failures =
      stats_->estimation_failures.load(std::memory_order_relaxed);
  return out;
}

Result<ServingSession::SlotReport> ServingSession::DoIngest(
    uint64_t slot, const std::vector<SeedSpeed>& observations,
    obs::SlotTraceContext* ctx) {
  obs::ScopedSpan span(opts_.observability.trace, "serving/ingest");
  IngestLatencyScope latency(m_ingest_latency_, m_slow_ingests_,
                             opts_.observability.slow_ingest_ms);
  if (has_report_) {
    if (slot == last_report_.slot) {
      // Idempotent re-delivery: serve the cached report, mutate nothing.
      Count(stats_->duplicate_slots, m_duplicate_slots_);
      SlotReport replay = last_report_;
      replay.duplicate = true;
      return replay;
    }
    if (slot < last_report_.slot) {
      Count(stats_->out_of_order_slots, m_out_of_order_slots_);
      // Slot continuity is broken; the next accepted slot must start cold.
      trend_state_.Invalidate();
      if (slo_ != nullptr) slo_->NoteDegradation("out_of_order_slot", slot);
      return Status::FailedPrecondition(
          "stale slot " + std::to_string(slot) + " arrived after slot " +
          std::to_string(last_report_.slot) + " was served");
    }
  }

  size_t filtered = 0;
  size_t deduplicated = 0;
  Result<std::vector<SeedSpeed>> sanitized = [&] {
    obs::FlightSpan admission(opts_.observability.flight, slot,
                              obs::FlightStage::kAdmission, obs::kNoShard,
                              ctx);
    return Sanitize(observations, &filtered, &deduplicated);
  }();
  if (!sanitized.ok()) {
    // The slot is not consumed: a corrected batch may be re-sent.
    Count(stats_->rejected_batches, m_rejected_batches_);
    if (slo_ != nullptr) slo_->NoteDegradation("rejected_batch", slot);
    return sanitized.status();
  }
  Count(stats_->observations_filtered, m_observations_filtered_, filtered);
  Count(stats_->observations_deduplicated, m_observations_deduplicated_,
        deduplicated);
  const size_t dropped = filtered + deduplicated;
  if (sanitized->empty()) return CarryForward(slot, dropped, ctx);

  Result<OnlineTrafficMonitor::SlotReport> report = monitor_.Process(
      slot, *sanitized, opts_.warm_start ? &trend_state_ : nullptr,
      obs::FlightSink{opts_.observability.flight, slot, ctx});
  bool healthy = report.ok();
  if (healthy) {
    // Never serve a non-finite or negative speed, whatever the estimator
    // produced; degrade to the last good estimate instead.
    for (double v : report->estimate.speeds.speed_kmh) {
      if (!std::isfinite(v) || v < 0.0) {
        healthy = false;
        break;
      }
    }
  }
  if (!healthy) {
    Count(stats_->estimation_failures, m_estimation_failures_);
    if (slo_ != nullptr) slo_->NoteDegradation("estimation_failure", slot);
    return CarryForward(slot, dropped, ctx);
  }

  Count(stats_->slots_estimated, m_slots_estimated_);
  stale_streak_ = 0;
  obs::Set(m_staleness_, 0.0);
  last_report_ = SlotReport{};
  last_report_.slot = slot;
  last_report_.monitor = std::move(*report);
  last_report_.observations_used = sanitized->size();
  last_report_.observations_dropped = dropped;
  has_report_ = true;
  PublishSnapshot(ctx);
  return last_report_;
}

Result<ServingSession::SlotReport> ServingSession::Ingest(
    uint64_t slot, const std::vector<SeedSpeed>& observations) {
  return Ingest(slot, observations, nullptr);
}

Result<ServingSession::SlotReport> ServingSession::Ingest(
    uint64_t slot, const std::vector<SeedSpeed>& observations,
    obs::SlotTraceContext* ctx) {
  obs::FlightRecorder* flight = opts_.observability.flight;
  // Detached: one predicted branch, then the PR-3 contract path — no clock
  // reads, no context, bitwise-identical behaviour.
  if (flight == nullptr) return DoIngest(slot, observations, nullptr);
  obs::SlotTraceContext local;
  if (ctx == nullptr) {
    // Direct Ingest call (no front-end): the slot's timeline starts here.
    local.slot = slot;
    local.origin_ns = obs::MonotonicNanos();
    ctx = &local;
  }
  uint64_t start_ns = obs::MonotonicNanos();
  Result<SlotReport> result = DoIngest(slot, observations, ctx);
  // The ingest envelope is recorded manually (not via FlightSpan) so it is
  // already in the ring when the SLO engine collects this slot's timeline.
  flight->Record(slot, obs::FlightStage::kIngest, start_ns,
                 obs::ElapsedNanosSince(start_ns), obs::kNoShard,
                 ++ctx->stage_seq);
  if (slo_ != nullptr) {
    slo_->ObserveSlot(
        obs::ComputeSlotCriticalPath(flight->CollectSlot(slot), slot));
  }
  return result;
}

}  // namespace trendspeed
