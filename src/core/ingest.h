// IngestFrontEnd: the lock-free write path between observation producers
// and a ServingSession.
//
// Millions of users reporting speeds means many producer threads and one
// estimator. The front-end decouples them with a bounded MPSC queue
// (util/mpsc_queue.h):
//
//   producers   Offer(slot, obs)     lock-free push; `false` = backpressure
//   consumer    Drain() / Flush()    pops in FIFO order, groups runs of
//                                    equal slots into batches, and hands
//                                    each batch to ServingSession::Ingest
//                                    at the slot boundary
//
// Admission is slot-batched with a watermark: the drain loop accumulates
// observations while their slot matches the pending batch, flushes the
// batch the moment a later slot appears, and drops (and counts) stragglers
// for slots older than the pending one. Out-of-order or duplicate *batches*
// are the session's business — Ingest already rejects/absorbs them
// gracefully and counts them in ServingStats.
//
// Determinism contract: with a single producer and a single drain thread,
// the sequence of Ingest calls — and therefore every served report, stat,
// and published snapshot — is bitwise identical to calling Ingest directly
// with the same per-slot batches (tests/ingest_test.cc pins this).
//
// Thread roles: Offer from any thread; Drain/Flush from ONE consumer
// thread at a time. stats() and queue_depth() are safe anywhere.

#ifndef TRENDSPEED_CORE_INGEST_H_
#define TRENDSPEED_CORE_INGEST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/serving.h"
#include "util/mpsc_queue.h"
#include "util/status.h"

namespace trendspeed {

/// One queued crowd observation, tagged with its time slot.
struct QueuedObservation {
  uint64_t slot = 0;
  SeedSpeed obs;
  /// MonotonicNanos at Offer, stamped only when a flight recorder is
  /// attached (0 otherwise — detached producers never read the clock). The
  /// earliest stamp in a batch becomes the slot's queue-wait origin.
  uint64_t enqueue_ns = 0;
};

/// Cumulative front-end counters (snapshot; every field is atomically
/// maintained and mirrored into the metrics registry — same quiescence
/// equivalence as ServingStats).
struct IngestStats {
  uint64_t enqueued = 0;               ///< observations accepted by Offer
  uint64_t rejected_backpressure = 0;  ///< Offers refused: queue full
  uint64_t flushed_slots = 0;          ///< batches handed to Ingest
  uint64_t stragglers = 0;  ///< observations behind the slot watermark
  /// Per-slot straggler attribution: the slot that has lost the most
  /// observations behind the watermark, and how many it lost. 0/0 until
  /// the first straggler. (Without this, stragglers vanish into one global
  /// counter and the worst-hit slot cannot be named.)
  uint64_t straggler_worst_slot = 0;
  uint64_t straggler_worst_count = 0;
};

class IngestFrontEnd {
 public:
  /// The session must outlive the front-end and have
  /// options().ingest_queue.capacity > 0 (the validated off-by-default
  /// knob); a zero capacity is refused with FailedPrecondition.
  static Result<std::unique_ptr<IngestFrontEnd>> Create(
      ServingSession* session);

  /// Producer side: lock-free, wait-free in the common case. Returns false
  /// when the queue is full — the observation is dropped and counted
  /// (backpressure is the caller's signal to shed or retry later).
  bool Offer(uint64_t slot, const SeedSpeed& obs);

  /// Consumer side: pops everything currently queued, flushing a batch
  /// into ServingSession::Ingest whenever the slot advances. The batch for
  /// the newest slot stays pending (more of it may still arrive) until a
  /// later slot or Flush(). Returns the number of batches flushed.
  size_t Drain();

  /// Consumer side: Drain(), then flush the pending batch too. Returns the
  /// session's report for that final batch, NotFound when nothing was
  /// pending, or the session's error for the batch (already counted in
  /// ServingStats; the front-end stays usable).
  Result<ServingSession::SlotReport> Flush();

  IngestStats stats() const;
  /// Racy depth estimate (also exported as the queue-depth gauge).
  size_t queue_depth() const { return queue_.SizeApprox(); }
  size_t capacity() const { return queue_.capacity(); }
  ServingSession* session() const { return session_; }

 private:
  IngestFrontEnd(ServingSession* session, size_t capacity);

  /// Hands the pending batch to the session and resets it. Session-level
  /// rejections (out-of-order, strict validation) are absorbed here — the
  /// session counts them — so the drain loop never stalls on bad input.
  void FlushPending();

  /// Flight-recorder hookup for the batch about to flush: records the
  /// slot's queue-wait stage (first enqueue -> now) and initializes *ctx
  /// for the downstream Ingest call. Returns nullptr (and touches nothing)
  /// when no recorder is attached.
  obs::SlotTraceContext* BeginSlotTrace(obs::SlotTraceContext* ctx);

  /// Per-slot straggler attribution (consumer thread only): bumps the
  /// slot's count in a bounded map and maintains the worst-slot running
  /// max. Counts only grow, so the max never needs revisiting.
  void NoteStraggler(uint64_t slot);

  ServingSession* session_;
  MpscBoundedQueue<QueuedObservation> queue_;
  obs::FlightRecorder* flight_ = nullptr;  // borrowed via ServingOptions

  // Consumer-only state.
  std::vector<SeedSpeed> pending_;
  uint64_t pending_slot_ = 0;
  bool has_pending_ = false;
  uint64_t pending_origin_ns_ = 0;  ///< earliest enqueue stamp in the batch
  std::unordered_map<uint64_t, uint64_t> straggler_counts_;

  struct AtomicStats {
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> rejected_backpressure{0};
    std::atomic<uint64_t> flushed_slots{0};
    std::atomic<uint64_t> stragglers{0};
    std::atomic<uint64_t> straggler_worst_slot{0};
    std::atomic<uint64_t> straggler_worst_count{0};
  };
  AtomicStats stats_;

  void Count(std::atomic<uint64_t>& field, obs::Counter* mirror) {
    field.fetch_add(1, std::memory_order_relaxed);
    obs::Add(mirror);
  }

  obs::Counter* m_enqueued_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_flushed_slots_ = nullptr;
  obs::Counter* m_stragglers_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_straggler_worst_slot_ = nullptr;
  obs::Gauge* m_straggler_worst_count_ = nullptr;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_INGEST_H_
