// TrafficSpeedEstimator — the library's primary public API.
//
// Lifecycle:
//   1. Train(net, history, config)      offline: mines the correlation
//      graph, trains the hierarchical speed model, precomputes influence.
//   2. SelectSeeds(K, strategy)         choose the K roads to crowdsource.
//   3. Estimate(slot, seed_speeds)      online, per time slot: infer trends
//      (Step 1) then speeds (Step 2) for every road. O(V + E).

#ifndef TRENDSPEED_CORE_ESTIMATOR_H_
#define TRENDSPEED_CORE_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "corr/correlation_graph.h"
#include "probe/history.h"
#include "roadnet/road_network.h"
#include "seed/objective.h"
#include "shard/sharded_bp.h"
#include "speed/hierarchical_model.h"
#include "speed/propagation.h"
#include "trend/trend_model.h"
#include "util/status.h"

namespace trendspeed {

/// Seed-selection algorithms exposed through the pipeline.
enum class SeedStrategy {
  kGreedy,
  kLazyGreedy,
  kStochasticGreedy,
  kRandom,
  kTopDegree,
  kTopVariance,
  kPageRank,
  kKCenter,
};

const char* SeedStrategyName(SeedStrategy strategy);

class TrafficSpeedEstimator {
 public:
  /// Trains all offline components. `net` and `db` must outlive the
  /// estimator.
  static Result<TrafficSpeedEstimator> Train(const RoadNetwork* net,
                                             const HistoricalDb* db,
                                             const PipelineConfig& config);

  /// Assembles an estimator from pre-built (e.g. deserialized) components;
  /// see core/model_io.h for the save/load round trip. Components must be
  /// consistent with `net`/`db` sizes.
  static Result<TrafficSpeedEstimator> FromComponents(
      const RoadNetwork* net, const HistoricalDb* db,
      const PipelineConfig& config, CorrelationGraph graph,
      InfluenceModel influence, HierarchicalSpeedModel speed_model);

  /// Selects K seed roads; `rng_seed` affects only the randomized
  /// strategies.
  Result<SeedSelectionResult> SelectSeeds(size_t k, SeedStrategy strategy,
                                          uint64_t rng_seed = 1) const;

  /// One online estimation: trends then speeds for every road.
  struct Output {
    TrendEstimate trends;
    SpeedEstimateResult speeds;
  };
  Result<Output> Estimate(uint64_t slot,
                          const std::vector<SeedSpeed>& seeds) const;

  /// Stateful variant for serving loops: `state` (caller-owned, see
  /// TrendInferenceState) lets Step 1 warm-start from the previous slot's
  /// converged BP messages. Passing null is the one-shot cold path above,
  /// bit for bit. The caller is responsible for Invalidate()-ing the state
  /// whenever slot continuity breaks (ServingSession does this on
  /// creation, carry-forward, and out-of-order rejection).
  Result<Output> Estimate(uint64_t slot, const std::vector<SeedSpeed>& seeds,
                          TrendInferenceState* state) const;

  /// Slot-trace variant: `flight` carries the serving layer's recorder +
  /// causal context (the estimator's own config_.observability has no
  /// recorder — flight hookup is per serving session, not per model).
  /// Records this call as the slot's `estimate` envelope span plus nested
  /// `bp_solve` / `shard_solve` / `exchange` spans. A default (detached)
  /// sink behaves exactly like the overload above.
  Result<Output> Estimate(uint64_t slot, const std::vector<SeedSpeed>& seeds,
                          TrendInferenceState* state,
                          const obs::FlightSink& flight) const;

  const CorrelationGraph& correlation_graph() const { return *graph_; }
  const InfluenceModel& influence() const { return *influence_; }
  const HierarchicalSpeedModel& speed_model() const { return *speed_model_; }
  const TrendModel& trend_model() const { return *trend_model_; }
  /// The sharded BP engine; null unless PipelineConfig::sharding enabled
  /// it (docs/sharding.md).
  const ShardedBpEngine* sharded_engine() const { return sharded_.get(); }
  const PipelineConfig& config() const { return config_; }
  const RoadNetwork& network() const { return *net_; }
  const HistoricalDb& history() const { return *db_; }

 private:
  TrafficSpeedEstimator() = default;

  const RoadNetwork* net_ = nullptr;
  const HistoricalDb* db_ = nullptr;
  PipelineConfig config_;
  // unique_ptr keeps the estimator cheaply movable.
  std::unique_ptr<CorrelationGraph> graph_;
  std::unique_ptr<InfluenceModel> influence_;
  std::unique_ptr<HierarchicalSpeedModel> speed_model_;
  std::unique_ptr<TrendModel> trend_model_;
  /// Non-null only when config_.sharding.enabled(): Step 1 then runs the
  /// concurrent per-shard BP engine instead of the flat path.
  std::unique_ptr<ShardedBpEngine> sharded_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_ESTIMATOR_H_
