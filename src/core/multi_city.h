// MultiCityServer: N independent city graphs behind one process.
//
// Each city is its own ServingSession — its own estimator, slot clock,
// warm-start state, and degradation counters — while the heavyweight
// process-wide resources are shared: every session's parallel work (BP
// sweeps, sharded solves) runs on the one ThreadPool::Global(), and cities
// created with the same MetricsRegistry in their ServingOptions export
// into one scrape endpoint. This is the deployment shape the sharded
// engine targets (docs/sharding.md): a metropolitan node serving several
// district graphs, or several cities, from one binary.
//
// Sessions are independent by construction — there is no cross-city
// state — so interleaving Ingest calls across cities in any order is
// equivalent to running the cities in separate processes (pinned by
// tests/multi_city_test.cc).

#ifndef TRENDSPEED_CORE_MULTI_CITY_H_
#define TRENDSPEED_CORE_MULTI_CITY_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/serving.h"
#include "util/status.h"

namespace trendspeed {

class MultiCityServer {
 public:
  struct CitySpec {
    /// Unique, non-empty routing key.
    std::string name;
    /// Must outlive the server.
    const TrafficSpeedEstimator* estimator = nullptr;
    /// Per-city serving knobs. Point several cities' observability at the
    /// same registry for one shared scrape endpoint.
    ServingOptions serving;
  };

  /// Builds one session per spec. Fails on an empty spec list, a null
  /// estimator, or a duplicate/empty city name.
  static Result<MultiCityServer> Create(const std::vector<CitySpec>& cities);

  size_t num_cities() const { return sessions_.size(); }
  const std::string& name(size_t city) const { return names_[city]; }
  /// Index for a city name; npos when unknown.
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t Find(std::string_view name) const;

  ServingSession& session(size_t city) { return sessions_[city]; }
  const ServingSession& session(size_t city) const { return sessions_[city]; }

  /// Forwards one slot of observations to the named city's session; the
  /// full ServingSession::Ingest contract applies per city.
  Result<ServingSession::SlotReport> Ingest(
      std::string_view city, uint64_t slot,
      const std::vector<SeedSpeed>& observations);
  Result<ServingSession::SlotReport> Ingest(
      size_t city, uint64_t slot, const std::vector<SeedSpeed>& observations);

  /// Cumulative counters summed across every city — the process-level
  /// health view (per-city breakdowns come from session(i).stats()).
  ServingStats TotalStats() const;

 private:
  MultiCityServer() = default;

  std::vector<std::string> names_;
  std::vector<ServingSession> sessions_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CORE_MULTI_CITY_H_
