#include "core/ingest.h"

#include "obs/catalog.h"

namespace trendspeed {

IngestFrontEnd::IngestFrontEnd(ServingSession* session, size_t capacity)
    : session_(session), queue_(capacity) {
  obs::MetricsRegistry* reg = session->options().observability.metrics;
  m_enqueued_ = obs::GetCounter(reg, obs::kServingIngestEnqueuedTotal);
  m_rejected_ =
      obs::GetCounter(reg, obs::kServingIngestRejectedBackpressureTotal);
  m_flushed_slots_ =
      obs::GetCounter(reg, obs::kServingIngestFlushedSlotsTotal);
  m_stragglers_ = obs::GetCounter(reg, obs::kServingIngestStragglersTotal);
  m_queue_depth_ = obs::GetGauge(reg, obs::kServingIngestQueueDepth);
}

Result<std::unique_ptr<IngestFrontEnd>> IngestFrontEnd::Create(
    ServingSession* session) {
  if (session == nullptr) {
    return Status::InvalidArgument("null session");
  }
  const IngestQueueOptions& opts = session->options().ingest_queue;
  TS_RETURN_NOT_OK(opts.Validate());
  if (opts.capacity == 0) {
    return Status::FailedPrecondition(
        "ingest queue disabled: ServingOptions::ingest_queue.capacity is 0");
  }
  return std::unique_ptr<IngestFrontEnd>(
      new IngestFrontEnd(session, opts.capacity));
}

bool IngestFrontEnd::Offer(uint64_t slot, const SeedSpeed& obs) {
  if (!queue_.TryPush(QueuedObservation{slot, obs})) {
    Count(stats_.rejected_backpressure, m_rejected_);
    return false;
  }
  Count(stats_.enqueued, m_enqueued_);
  obs::Set(m_queue_depth_, static_cast<double>(queue_.SizeApprox()));
  return true;
}

void IngestFrontEnd::FlushPending() {
  if (!has_pending_) return;
  Count(stats_.flushed_slots, m_flushed_slots_);
  // Rejections are the session's call and already land in ServingStats
  // (out_of_order_slots, rejected_batches, ...); the drain loop moves on.
  (void)session_->Ingest(pending_slot_, pending_);
  pending_.clear();
  has_pending_ = false;
}

size_t IngestFrontEnd::Drain() {
  const uint64_t before =
      stats_.flushed_slots.load(std::memory_order_relaxed);
  QueuedObservation item;
  while (queue_.TryPop(&item)) {
    if (has_pending_ && item.slot < pending_slot_) {
      // Behind the watermark: its batch already flushed (another producer
      // advanced the stream). Dropping here keeps one bad interleaving
      // from rejecting the whole pending batch as out-of-order.
      Count(stats_.stragglers, m_stragglers_);
      continue;
    }
    if (has_pending_ && item.slot > pending_slot_) FlushPending();
    if (!has_pending_) {
      pending_slot_ = item.slot;
      has_pending_ = true;
    }
    pending_.push_back(item.obs);
  }
  obs::Set(m_queue_depth_, static_cast<double>(queue_.SizeApprox()));
  return static_cast<size_t>(
      stats_.flushed_slots.load(std::memory_order_relaxed) - before);
}

Result<ServingSession::SlotReport> IngestFrontEnd::Flush() {
  Drain();
  if (!has_pending_) {
    return Status::NotFound("no pending observations to flush");
  }
  Count(stats_.flushed_slots, m_flushed_slots_);
  uint64_t slot = pending_slot_;
  std::vector<SeedSpeed> batch;
  batch.swap(pending_);
  has_pending_ = false;
  return session_->Ingest(slot, batch);
}

IngestStats IngestFrontEnd::stats() const {
  IngestStats out;
  out.enqueued = stats_.enqueued.load(std::memory_order_relaxed);
  out.rejected_backpressure =
      stats_.rejected_backpressure.load(std::memory_order_relaxed);
  out.flushed_slots = stats_.flushed_slots.load(std::memory_order_relaxed);
  out.stragglers = stats_.stragglers.load(std::memory_order_relaxed);
  return out;
}

}  // namespace trendspeed
