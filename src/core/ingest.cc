#include "core/ingest.h"

#include "obs/catalog.h"
#include "obs/clock.h"

namespace trendspeed {

IngestFrontEnd::IngestFrontEnd(ServingSession* session, size_t capacity)
    : session_(session),
      queue_(capacity),
      flight_(session->options().observability.flight) {
  obs::MetricsRegistry* reg = session->options().observability.metrics;
  m_enqueued_ = obs::GetCounter(reg, obs::kServingIngestEnqueuedTotal);
  m_rejected_ =
      obs::GetCounter(reg, obs::kServingIngestRejectedBackpressureTotal);
  m_flushed_slots_ =
      obs::GetCounter(reg, obs::kServingIngestFlushedSlotsTotal);
  m_stragglers_ = obs::GetCounter(reg, obs::kServingIngestStragglersTotal);
  m_queue_depth_ = obs::GetGauge(reg, obs::kServingIngestQueueDepth);
  m_straggler_worst_slot_ =
      obs::GetGauge(reg, obs::kServingIngestStragglerWorstSlot);
  m_straggler_worst_count_ =
      obs::GetGauge(reg, obs::kServingIngestStragglerWorstCount);
}

Result<std::unique_ptr<IngestFrontEnd>> IngestFrontEnd::Create(
    ServingSession* session) {
  if (session == nullptr) {
    return Status::InvalidArgument("null session");
  }
  const IngestQueueOptions& opts = session->options().ingest_queue;
  TS_RETURN_NOT_OK(opts.Validate());
  if (opts.capacity == 0) {
    return Status::FailedPrecondition(
        "ingest queue disabled: ServingOptions::ingest_queue.capacity is 0");
  }
  return std::unique_ptr<IngestFrontEnd>(
      new IngestFrontEnd(session, opts.capacity));
}

bool IngestFrontEnd::Offer(uint64_t slot, const SeedSpeed& obs) {
  QueuedObservation item{slot, obs};
  // Detached front-ends never read the clock on the producer path (the
  // one-branch contract); attached ones stamp the enqueue time so the
  // flight recorder can attribute queue wait.
  if (flight_ != nullptr) item.enqueue_ns = obs::MonotonicNanos();
  if (!queue_.TryPush(item)) {
    Count(stats_.rejected_backpressure, m_rejected_);
    return false;
  }
  Count(stats_.enqueued, m_enqueued_);
  obs::Set(m_queue_depth_, static_cast<double>(queue_.SizeApprox()));
  return true;
}

obs::SlotTraceContext* IngestFrontEnd::BeginSlotTrace(
    obs::SlotTraceContext* ctx) {
  if (flight_ == nullptr) return nullptr;
  uint64_t now = obs::MonotonicNanos();
  uint64_t origin =
      pending_origin_ns_ != 0 && pending_origin_ns_ < now ? pending_origin_ns_
                                                          : now;
  ctx->slot = pending_slot_;
  ctx->origin_ns = origin;
  ctx->stage_seq = 0;
  flight_->Record(pending_slot_, obs::FlightStage::kQueueWait, origin,
                  now - origin, obs::kNoShard, ++ctx->stage_seq);
  return ctx;
}

void IngestFrontEnd::FlushPending() {
  if (!has_pending_) return;
  Count(stats_.flushed_slots, m_flushed_slots_);
  obs::SlotTraceContext ctx;
  obs::SlotTraceContext* ctx_ptr = BeginSlotTrace(&ctx);
  // Rejections are the session's call and already land in ServingStats
  // (out_of_order_slots, rejected_batches, ...); the drain loop moves on.
  (void)session_->Ingest(pending_slot_, pending_, ctx_ptr);
  pending_.clear();
  has_pending_ = false;
  pending_origin_ns_ = 0;
}

size_t IngestFrontEnd::Drain() {
  const uint64_t before =
      stats_.flushed_slots.load(std::memory_order_relaxed);
  QueuedObservation item;
  while (queue_.TryPop(&item)) {
    if (has_pending_ && item.slot < pending_slot_) {
      // Behind the watermark: its batch already flushed (another producer
      // advanced the stream). Dropping here keeps one bad interleaving
      // from rejecting the whole pending batch as out-of-order.
      Count(stats_.stragglers, m_stragglers_);
      NoteStraggler(item.slot);
      continue;
    }
    if (has_pending_ && item.slot > pending_slot_) FlushPending();
    if (!has_pending_) {
      pending_slot_ = item.slot;
      has_pending_ = true;
    }
    // Queue-wait origin = earliest producer stamp in the batch (stamps are
    // 0 when no recorder is attached, and multi-producer pop order is not
    // enqueue order, hence the min).
    if (item.enqueue_ns != 0 &&
        (pending_origin_ns_ == 0 || item.enqueue_ns < pending_origin_ns_)) {
      pending_origin_ns_ = item.enqueue_ns;
    }
    pending_.push_back(item.obs);
  }
  obs::Set(m_queue_depth_, static_cast<double>(queue_.SizeApprox()));
  return static_cast<size_t>(
      stats_.flushed_slots.load(std::memory_order_relaxed) - before);
}

Result<ServingSession::SlotReport> IngestFrontEnd::Flush() {
  Drain();
  if (!has_pending_) {
    return Status::NotFound("no pending observations to flush");
  }
  Count(stats_.flushed_slots, m_flushed_slots_);
  uint64_t slot = pending_slot_;
  obs::SlotTraceContext ctx;
  obs::SlotTraceContext* ctx_ptr = BeginSlotTrace(&ctx);
  std::vector<SeedSpeed> batch;
  batch.swap(pending_);
  has_pending_ = false;
  pending_origin_ns_ = 0;
  return session_->Ingest(slot, batch, ctx_ptr);
}

void IngestFrontEnd::NoteStraggler(uint64_t slot) {
  // Bounded attribution memory: past the cap, new slots still count in the
  // global straggler counter but are not individually attributed (a stream
  // healthy enough to matter revisits few distinct stale slots).
  constexpr size_t kMaxTrackedSlots = 4096;
  auto it = straggler_counts_.find(slot);
  if (it == straggler_counts_.end()) {
    if (straggler_counts_.size() >= kMaxTrackedSlots) return;
    it = straggler_counts_.emplace(slot, 0).first;
  }
  uint64_t count = ++it->second;
  if (count > stats_.straggler_worst_count.load(std::memory_order_relaxed)) {
    stats_.straggler_worst_count.store(count, std::memory_order_relaxed);
    stats_.straggler_worst_slot.store(slot, std::memory_order_relaxed);
    obs::Set(m_straggler_worst_count_, static_cast<double>(count));
    obs::Set(m_straggler_worst_slot_, static_cast<double>(slot));
  }
}

IngestStats IngestFrontEnd::stats() const {
  IngestStats out;
  out.enqueued = stats_.enqueued.load(std::memory_order_relaxed);
  out.rejected_backpressure =
      stats_.rejected_backpressure.load(std::memory_order_relaxed);
  out.flushed_slots = stats_.flushed_slots.load(std::memory_order_relaxed);
  out.stragglers = stats_.stragglers.load(std::memory_order_relaxed);
  out.straggler_worst_slot =
      stats_.straggler_worst_slot.load(std::memory_order_relaxed);
  out.straggler_worst_count =
      stats_.straggler_worst_count.load(std::memory_order_relaxed);
  return out;
}

}  // namespace trendspeed
