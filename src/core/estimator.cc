#include "core/estimator.h"

#include <cmath>

#include "obs/catalog.h"
#include "seed/exact.h"
#include "seed/greedy.h"
#include "seed/heuristics.h"
#include "seed/lazy_greedy.h"
#include "seed/stochastic_greedy.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace trendspeed {

const char* SeedStrategyName(SeedStrategy strategy) {
  switch (strategy) {
    case SeedStrategy::kGreedy:
      return "greedy";
    case SeedStrategy::kLazyGreedy:
      return "lazy-greedy";
    case SeedStrategy::kStochasticGreedy:
      return "stochastic-greedy";
    case SeedStrategy::kRandom:
      return "random";
    case SeedStrategy::kTopDegree:
      return "top-degree";
    case SeedStrategy::kTopVariance:
      return "top-variance";
    case SeedStrategy::kPageRank:
      return "pagerank";
    case SeedStrategy::kKCenter:
      return "k-center";
  }
  return "?";
}

Result<TrafficSpeedEstimator> TrafficSpeedEstimator::Train(
    const RoadNetwork* net, const HistoricalDb* db,
    const PipelineConfig& config) {
  if (net == nullptr || db == nullptr) {
    return Status::InvalidArgument("null network or history");
  }
  TS_RETURN_NOT_OK(config.Validate());
  TS_ASSIGN_OR_RETURN(CorrelationGraph graph,
                      CorrelationGraph::Build(*net, *db, config.corr));
  TS_ASSIGN_OR_RETURN(InfluenceModel influence,
                      InfluenceModel::Build(graph, *db, config.influence));
  TS_ASSIGN_OR_RETURN(
      HierarchicalSpeedModel speed_model,
      HierarchicalSpeedModel::Train(*net, *db, graph, influence,
                                    config.speed));
  return FromComponents(net, db, config, std::move(graph),
                        std::move(influence), std::move(speed_model));
}

Result<TrafficSpeedEstimator> TrafficSpeedEstimator::FromComponents(
    const RoadNetwork* net, const HistoricalDb* db,
    const PipelineConfig& config, CorrelationGraph graph,
    InfluenceModel influence, HierarchicalSpeedModel speed_model) {
  if (net == nullptr || db == nullptr) {
    return Status::InvalidArgument("null network or history");
  }
  TS_RETURN_NOT_OK(config.Validate());
  if (graph.num_roads() != net->num_roads() ||
      influence.num_roads() != net->num_roads()) {
    return Status::InvalidArgument("components / network size mismatch");
  }
  TrafficSpeedEstimator est;
  est.net_ = net;
  est.db_ = db;
  est.config_ = config;
  // Fan the pipeline-wide observability sinks out to the per-stage option
  // structs (only where the caller left them null, so explicit per-stage
  // wiring wins). Must happen before the TrendModel copies config_.trend.
  const ObservabilityOptions& o = config.observability;
  if (est.config_.trend.bp.metrics == nullptr) {
    est.config_.trend.bp.metrics = o.metrics;
  }
  if (est.config_.trend.bp.trace == nullptr) {
    est.config_.trend.bp.trace = o.trace;
  }
  if (est.config_.seed_selection.metrics == nullptr) {
    est.config_.seed_selection.metrics = o.metrics;
  }
  if (est.config_.seed_selection.trace == nullptr) {
    est.config_.seed_selection.trace = o.trace;
  }
  if (o.instrument_thread_pool && o.metrics != nullptr) {
    ThreadPool::Global().AttachMetrics(o.metrics);
  }
  est.graph_ = std::make_unique<CorrelationGraph>(std::move(graph));
  est.influence_ = std::make_unique<InfluenceModel>(std::move(influence));
  est.speed_model_ =
      std::make_unique<HierarchicalSpeedModel>(std::move(speed_model));
  est.trend_model_ =
      std::make_unique<TrendModel>(est.graph_.get(), db, est.config_.trend);
  if (est.config_.sharding.enabled()) {
    // Validate() already pinned the trend engine to BP for this combination.
    TS_ASSIGN_OR_RETURN(ShardedBpEngine sharded,
                        ShardedBpEngine::Build(est.trend_model_->bp_graph(),
                                               est.config_.sharding));
    est.sharded_ = std::make_unique<ShardedBpEngine>(std::move(sharded));
  }
  return est;
}

Result<SeedSelectionResult> TrafficSpeedEstimator::SelectSeeds(
    size_t k, SeedStrategy strategy, uint64_t rng_seed) const {
  switch (strategy) {
    case SeedStrategy::kGreedy:
      return SelectSeedsGreedy(*influence_, k, config_.seed_selection);
    case SeedStrategy::kLazyGreedy:
      return SelectSeedsLazyGreedy(*influence_, k, config_.seed_selection);
    case SeedStrategy::kStochasticGreedy: {
      StochasticGreedyOptions opts;
      opts.seed = rng_seed;
      opts.metrics = config_.seed_selection.metrics;
      opts.trace = config_.seed_selection.trace;
      return SelectSeedsStochasticGreedy(*influence_, k, opts);
    }
    case SeedStrategy::kRandom:
      return SelectSeedsRandom(*influence_, k, rng_seed);
    case SeedStrategy::kTopDegree:
      return SelectSeedsTopDegree(*influence_, *graph_, k);
    case SeedStrategy::kTopVariance:
      return SelectSeedsTopVariance(*influence_, k);
    case SeedStrategy::kPageRank:
      return SelectSeedsPageRank(*influence_, *graph_, k);
    case SeedStrategy::kKCenter:
      return SelectSeedsKCenter(*influence_, *graph_, k, rng_seed);
  }
  return Status::InvalidArgument("unknown seed strategy");
}

Result<TrafficSpeedEstimator::Output> TrafficSpeedEstimator::Estimate(
    uint64_t slot, const std::vector<SeedSpeed>& seeds) const {
  return Estimate(slot, seeds, nullptr);
}

Result<TrafficSpeedEstimator::Output> TrafficSpeedEstimator::Estimate(
    uint64_t slot, const std::vector<SeedSpeed>& seeds,
    TrendInferenceState* state) const {
  return Estimate(slot, seeds, state, obs::FlightSink{});
}

Result<TrafficSpeedEstimator::Output> TrafficSpeedEstimator::Estimate(
    uint64_t slot, const std::vector<SeedSpeed>& seeds,
    TrendInferenceState* state, const obs::FlightSink& flight) const {
  const ObservabilityOptions& o = config_.observability;
  obs::ScopedSpan span(o.trace, "estimator/estimate");
  // The estimate envelope overlaps bp_solve/exchange and is excluded from
  // critical-path attribution (obs/flight.h), but keeps the timeline whole.
  obs::FlightSpan flight_span(flight.recorder, slot,
                              obs::FlightStage::kEstimate, obs::kNoShard,
                              flight.ctx);
  WallTimer timer;
  // Seed trends come from comparing the crowdsourced speed with the road's
  // historical mean.
  std::vector<SeedTrend> seed_trends;
  seed_trends.reserve(seeds.size());
  for (const SeedSpeed& s : seeds) {
    if (s.road >= net_->num_roads()) {
      return Status::InvalidArgument("seed road out of range");
    }
    if (!std::isfinite(s.speed_kmh) || s.speed_kmh <= 0.0) {
      // A NaN here would otherwise poison TrendOf and the influence
      // aggregate for every road the seed covers.
      return Status::InvalidArgument("seed speed must be positive and finite");
    }
    SeedTrend t;
    t.road = s.road;
    t.trend = db_->TrendOf(s.road, slot, s.speed_kmh,
                           net_->road(s.road).free_flow_kmh);
    seed_trends.push_back(t);
  }
  // The influence-weighted seed-deviation aggregate is shared by both
  // steps: trend evidence in Step 1, the regression input in Step 2.
  InfluenceAggregate aggregate =
      AggregateSeedDeviations(*influence_, *net_, *db_, seeds, slot);

  // Step 1: trends.
  Output out;
  std::vector<double> evidence;
  const std::vector<double>* evidence_ptr = nullptr;
  const LogisticCalibration& cal = speed_model_->evidence();
  if (config_.use_trend_evidence && cal.trained) {
    size_t n = net_->num_roads();
    evidence.assign(n, 0.0);
    std::vector<bool> assigned(n, false);
    for (RoadId v = 0; v < n; ++v) {
      if (aggregate.weight[v] > 0.0) {
        evidence[v] = cal.LogOdds(aggregate.x[v]);
        assigned[v] = true;
      }
    }
    // Spatial backfill: roads outside every seed's influence neighbourhood
    // inherit damped evidence from physically adjacent covered roads, so
    // the whole network gets at least weak real-time signal.
    std::vector<RoadId> frontier;
    for (RoadId v = 0; v < n; ++v) {
      if (assigned[v]) frontier.push_back(v);
    }
    for (uint32_t step = 0;
         step < config_.evidence_backfill_hops && !frontier.empty(); ++step) {
      std::vector<RoadId> next;
      std::vector<bool> pending(n, false);
      for (RoadId u : frontier) {
        auto consider = [&](RoadId v) {
          if (!assigned[v] && !pending[v]) {
            pending[v] = true;
            next.push_back(v);
          }
        };
        for (RoadId v : net_->RoadSuccessors(u)) consider(v);
        for (RoadId v : net_->RoadPredecessors(u)) consider(v);
        RoadId twin = net_->ReverseTwin(u);
        if (twin != kInvalidRoad) consider(twin);
      }
      for (RoadId v : next) {
        double sum = 0.0;
        size_t cnt = 0;
        auto take = [&](RoadId u) {
          if (assigned[u]) {
            sum += evidence[u];
            ++cnt;
          }
        };
        for (RoadId u : net_->RoadSuccessors(v)) take(u);
        for (RoadId u : net_->RoadPredecessors(v)) take(u);
        RoadId twin = net_->ReverseTwin(v);
        if (twin != kInvalidRoad) take(twin);
        if (cnt > 0) {
          evidence[v] =
              config_.evidence_backfill_damping * sum / static_cast<double>(cnt);
        }
      }
      for (RoadId v : next) assigned[v] = true;
      frontier = std::move(next);
    }
    evidence_ptr = &evidence;
  }
  if (sharded_ != nullptr) {
    // Sharded Step 1: identical potentials, solved by concurrent
    // per-district BP with boundary-halo exchange (docs/sharding.md).
    TS_ASSIGN_OR_RETURN(
        std::vector<double> pot,
        trend_model_->BuildPotentials(slot, seed_trends, evidence_ptr));
    std::vector<BpState>* shard_states =
        (state != nullptr && config_.trend.warm_start) ? &state->shard
                                                       : nullptr;
    ShardedBpResult sharded =
        sharded_->Infer(pot, config_.trend.bp, shard_states, flight);
    out.trends.p_up = std::move(sharded.p_up);
    out.trends.trend.resize(out.trends.p_up.size());
    for (size_t v = 0; v < out.trends.p_up.size(); ++v) {
      out.trends.trend[v] = out.trends.p_up[v] >= 0.5 ? +1 : -1;
    }
  } else {
    obs::FlightSpan bp_span(flight.recorder, slot, obs::FlightStage::kBpSolve,
                            obs::kNoShard, flight.ctx);
    TS_ASSIGN_OR_RETURN(out.trends, trend_model_->Infer(slot, seed_trends,
                                                        evidence_ptr, state));
  }

  // Step 2: speeds.
  if (config_.propagation.mode == AggregationMode::kInfluence) {
    TS_ASSIGN_OR_RETURN(
        out.speeds,
        EstimateSpeedsInfluence(*net_, *influence_, *db_, *speed_model_,
                                out.trends, seeds, aggregate, slot,
                                config_.propagation));
  } else {
    TS_ASSIGN_OR_RETURN(
        out.speeds,
        PropagateSpeeds(*net_, *graph_, *db_, *speed_model_, out.trends,
                        seeds, slot, config_.propagation));
  }
  obs::Add(obs::GetCounter(o.metrics, obs::kEstimatesTotal));
  obs::Observe(obs::GetHistogram(o.metrics, obs::kEstimateLatencyMs),
               timer.ElapsedMillis());
  return out;
}

}  // namespace trendspeed
