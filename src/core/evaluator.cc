#include "core/evaluator.h"

#include <memory>

#include "baseline/global_lsq.h"
#include "baseline/historical_mean.h"
#include "baseline/knn.h"
#include "baseline/label_propagation.h"
#include "baseline/matrix_completion.h"
#include "util/logging.h"
#include "util/timer.h"

namespace trendspeed {

Evaluator::Evaluator(const Dataset* dataset) : dataset_(dataset) {
  TS_CHECK(dataset != nullptr);
}

std::vector<uint64_t> Evaluator::TestSlots(uint32_t stride) const {
  TS_CHECK_GE(stride, 1u);
  std::vector<uint64_t> slots;
  for (uint64_t s = dataset_->first_test_slot(); s < dataset_->num_slots();
       s += stride) {
    slots.push_back(s);
  }
  return slots;
}

std::vector<SeedSpeed> Evaluator::ObserveSeeds(
    uint64_t slot, const std::vector<RoadId>& seeds, double noise_kmh,
    Rng* rng) const {
  std::vector<SeedSpeed> out;
  out.reserve(seeds.size());
  for (RoadId r : seeds) {
    double truth = dataset_->truth.at(slot, r);
    double observed = truth;
    if (noise_kmh > 0.0 && rng != nullptr) {
      observed = std::max(1.0, truth + rng->Gaussian(0.0, noise_kmh));
    }
    out.push_back(SeedSpeed{r, observed});
  }
  return out;
}

std::vector<int> Evaluator::TrueTrends(uint64_t slot) const {
  const RoadNetwork& net = dataset_->net;
  std::vector<int> trends(net.num_roads());
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    trends[r] = dataset_->history.TrendOf(r, slot, dataset_->truth.at(slot, r),
                                          net.road(r).free_flow_kmh);
  }
  return trends;
}

Result<EvalResult> Evaluator::Run(const MethodAdapter& method,
                                  const std::vector<RoadId>& seeds,
                                  const EvalOptions& opts) const {
  Rng rng(opts.rng_seed);
  std::vector<bool> is_seed(dataset_->net.num_roads(), false);
  for (RoadId r : seeds) is_seed[r] = true;

  std::vector<double> predicted, truth;
  EvalResult result;
  WallTimer timer;
  double estimation_seconds = 0.0;
  for (uint64_t slot : TestSlots(opts.slot_stride)) {
    std::vector<SeedSpeed> obs =
        ObserveSeeds(slot, seeds, opts.seed_noise_kmh, &rng);
    timer.Restart();
    TS_ASSIGN_OR_RETURN(std::vector<double> est, method.estimate(slot, obs));
    estimation_seconds += timer.ElapsedSeconds();
    if (est.size() != dataset_->net.num_roads()) {
      return Status::Internal(method.name + ": wrong output size");
    }
    for (RoadId r = 0; r < est.size(); ++r) {
      if (is_seed[r]) continue;  // score inference, not the free lunch
      predicted.push_back(est[r]);
      truth.push_back(dataset_->truth.at(slot, r));
    }
    ++result.slots;
  }
  result.metrics = ComputeSpeedMetrics(predicted, truth, opts.error_rate_tau);
  result.seconds_total = estimation_seconds;
  result.ms_per_slot =
      result.slots > 0 ? estimation_seconds * 1e3 / result.slots : 0.0;
  return result;
}

Result<Evaluator::RepeatedResult> Evaluator::RunRepeated(
    const MethodAdapter& method, const std::vector<RoadId>& seeds,
    const EvalOptions& opts, size_t repetitions) const {
  if (repetitions == 0) {
    return Status::InvalidArgument("repetitions must be positive");
  }
  OnlineStats mae, mape;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    EvalOptions local = opts;
    local.rng_seed = opts.rng_seed + 1000003 * rep;
    TS_ASSIGN_OR_RETURN(EvalResult r, Run(method, seeds, local));
    mae.Add(r.metrics.mae);
    mape.Add(r.metrics.mape);
  }
  RepeatedResult out;
  out.mae_mean = mae.mean();
  out.mae_stddev = mae.stddev();
  out.mape_mean = mape.mean();
  out.mape_stddev = mape.stddev();
  out.repetitions = repetitions;
  return out;
}

Result<double> Evaluator::RunTrendAccuracy(
    const TrafficSpeedEstimator& estimator, const std::vector<RoadId>& seeds,
    const EvalOptions& opts) const {
  Rng rng(opts.rng_seed);
  std::vector<bool> is_seed(dataset_->net.num_roads(), false);
  for (RoadId r : seeds) is_seed[r] = true;
  std::vector<int> predicted, truth;
  for (uint64_t slot : TestSlots(opts.slot_stride)) {
    std::vector<SeedSpeed> obs =
        ObserveSeeds(slot, seeds, opts.seed_noise_kmh, &rng);
    TS_ASSIGN_OR_RETURN(TrafficSpeedEstimator::Output out,
                        estimator.Estimate(slot, obs));
    std::vector<int> true_trends = TrueTrends(slot);
    for (RoadId r = 0; r < dataset_->net.num_roads(); ++r) {
      if (is_seed[r]) continue;
      predicted.push_back(out.trends.trend[r]);
      truth.push_back(true_trends[r]);
    }
  }
  return TrendAccuracy(predicted, truth);
}

Result<MethodSuite> BuildMethodSuite(const Dataset& dataset,
                                     const TrafficSpeedEstimator& estimator,
                                     bool include_matrix_completion) {
  MethodSuite suite;

  suite.methods.push_back(MethodAdapter{
      "TrendSpeed",
      [&estimator](uint64_t slot, const std::vector<SeedSpeed>& seeds)
          -> Result<std::vector<double>> {
        TS_ASSIGN_OR_RETURN(TrafficSpeedEstimator::Output out,
                            estimator.Estimate(slot, seeds));
        return std::move(out.speeds.speed_kmh);
      }});

  auto hist = std::make_shared<HistoricalMeanEstimator>(&dataset.net,
                                                        &dataset.history);
  suite.owners.push_back(hist);
  suite.methods.push_back(MethodAdapter{
      "HistoricalMean",
      [hist](uint64_t slot, const std::vector<SeedSpeed>& seeds) {
        return hist->Estimate(slot, seeds);
      }});

  auto knn =
      std::make_shared<KnnEstimator>(&dataset.net, &dataset.history);
  suite.owners.push_back(knn);
  suite.methods.push_back(MethodAdapter{
      "kNN", [knn](uint64_t slot, const std::vector<SeedSpeed>& seeds) {
        return knn->Estimate(slot, seeds);
      }});

  auto lp = std::make_shared<LabelPropagationEstimator>(&dataset.net,
                                                        &dataset.history);
  suite.owners.push_back(lp);
  suite.methods.push_back(MethodAdapter{
      "LabelProp", [lp](uint64_t slot, const std::vector<SeedSpeed>& seeds) {
        return lp->Estimate(slot, seeds);
      }});

  auto lsq = std::make_shared<GlobalLsqEstimator>(&dataset.net,
                                                  &dataset.history);
  suite.owners.push_back(lsq);
  suite.methods.push_back(MethodAdapter{
      "GlobalLSQ", [lsq](uint64_t slot, const std::vector<SeedSpeed>& seeds) {
        return lsq->Estimate(slot, seeds);
      }});

  if (include_matrix_completion) {
    TS_ASSIGN_OR_RETURN(
        MatrixCompletionEstimator mc,
        MatrixCompletionEstimator::Train(&dataset.net, &dataset.history));
    auto mc_ptr = std::make_shared<MatrixCompletionEstimator>(std::move(mc));
    suite.owners.push_back(mc_ptr);
    suite.methods.push_back(MethodAdapter{
        "MatrixCompletion",
        [mc_ptr](uint64_t slot, const std::vector<SeedSpeed>& seeds) {
          return mc_ptr->Estimate(slot, seeds);
        }});
  }
  return suite;
}

}  // namespace trendspeed
