#include "baseline/matrix_completion.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/matrix.h"
#include "util/random.h"

namespace trendspeed {

namespace {

/// Solves the ridge system for one latent vector given its observed
/// counterpart factors: min sum (f_j . z - y_j)^2 + lambda |z|^2.
std::vector<double> SolveLatent(const std::vector<const double*>& factors,
                                const std::vector<double>& targets,
                                uint32_t rank, double lambda) {
  Matrix gram(rank, rank);
  std::vector<double> rhs(rank, 0.0);
  for (size_t s = 0; s < factors.size(); ++s) {
    const double* f = factors[s];
    for (uint32_t a = 0; a < rank; ++a) {
      rhs[a] += f[a] * targets[s];
      for (uint32_t b = a; b < rank; ++b) gram(a, b) += f[a] * f[b];
    }
  }
  for (uint32_t a = 0; a < rank; ++a) {
    gram(a, a) += lambda;
    for (uint32_t b = 0; b < a; ++b) gram(a, b) = gram(b, a);
  }
  auto solved = CholeskySolve(gram, rhs);
  if (solved.ok()) return std::move(solved).value();
  return std::vector<double>(rank, 0.0);
}

}  // namespace

Result<MatrixCompletionEstimator> MatrixCompletionEstimator::Train(
    const RoadNetwork* net, const HistoricalDb* db,
    const MatrixCompletionOptions& opts) {
  if (net == nullptr || db == nullptr) {
    return Status::InvalidArgument("null network or history");
  }
  if (net->num_roads() != db->num_roads()) {
    return Status::InvalidArgument("network / history size mismatch");
  }
  if (opts.rank == 0) return Status::InvalidArgument("rank must be positive");

  size_t n = net->num_roads();
  uint64_t t = db->num_slots();
  uint32_t r = opts.rank;
  MatrixCompletionEstimator est;
  est.net_ = net;
  est.db_ = db;
  est.opts_ = opts;

  Rng rng(opts.seed);
  est.u_.resize(n * r);
  std::vector<double> v(t * r);
  for (double& x : est.u_) x = rng.Gaussian(0.0, 0.1);
  for (double& x : v) x = rng.Gaussian(0.0, 0.1);

  // Observed cells per road and per slot (indices into the other factor).
  // Deviations are recomputed on the fly from the db.
  auto deviation = [&](RoadId road, uint64_t slot) {
    return db->DeviationOf(road, slot, db->Observation(road, slot));
  };

  for (uint32_t iter = 0; iter < opts.als_iterations; ++iter) {
    // Fix V, solve each road row.
    for (RoadId road = 0; road < n; ++road) {
      std::vector<const double*> factors;
      std::vector<double> targets;
      for (uint64_t slot = 0; slot < t; ++slot) {
        if (!db->HasObservation(road, slot)) continue;
        factors.push_back(&v[slot * r]);
        targets.push_back(deviation(road, slot));
      }
      if (factors.empty()) continue;
      std::vector<double> z = SolveLatent(factors, targets, r, opts.lambda);
      std::copy(z.begin(), z.end(), est.u_.begin() + road * r);
    }
    // Fix U, solve each slot column.
    for (uint64_t slot = 0; slot < t; ++slot) {
      std::vector<const double*> factors;
      std::vector<double> targets;
      for (RoadId road = 0; road < n; ++road) {
        if (!db->HasObservation(road, slot)) continue;
        factors.push_back(&est.u_[road * r]);
        targets.push_back(deviation(road, slot));
      }
      if (factors.empty()) continue;
      std::vector<double> z = SolveLatent(factors, targets, r, opts.lambda);
      std::copy(z.begin(), z.end(), v.begin() + slot * r);
    }
  }

  // Training RMSE diagnostic.
  double se = 0.0;
  uint64_t cells = 0;
  for (RoadId road = 0; road < n; ++road) {
    for (uint64_t slot = 0; slot < t; ++slot) {
      if (!db->HasObservation(road, slot)) continue;
      double pred = 0.0;
      for (uint32_t a = 0; a < r; ++a) {
        pred += est.u_[road * r + a] * v[slot * r + a];
      }
      double diff = pred - deviation(road, slot);
      se += diff * diff;
      ++cells;
    }
  }
  est.train_rmse_ = cells > 0 ? std::sqrt(se / static_cast<double>(cells)) : 0.0;
  return est;
}

Result<std::vector<double>> MatrixCompletionEstimator::Estimate(
    uint64_t slot, const std::vector<SeedSpeed>& seeds) const {
  size_t n = net_->num_roads();
  uint32_t r = opts_.rank;
  std::vector<const double*> factors;
  std::vector<double> targets;
  for (const SeedSpeed& s : seeds) {
    if (s.road >= n) return Status::InvalidArgument("seed road out of range");
    double hist =
        db_->HistoricalMeanOr(s.road, slot, net_->road(s.road).free_flow_kmh);
    factors.push_back(&u_[s.road * r]);
    targets.push_back(hist > 0.0 ? s.speed_kmh / hist - 1.0 : 0.0);
  }
  std::vector<double> z(r, 0.0);
  if (!factors.empty()) {
    z = SolveLatent(factors, targets, r, opts_.lambda);
  }
  std::vector<double> out(n);
  for (RoadId road = 0; road < n; ++road) {
    double pred = 0.0;
    for (uint32_t a = 0; a < r; ++a) pred += u_[road * r + a] * z[a];
    pred = std::clamp(pred, -0.9, 1.5);
    double free_flow = net_->road(road).free_flow_kmh;
    double hist = db_->HistoricalMeanOr(road, slot, free_flow);
    out[road] = std::clamp(hist * (1.0 + pred), 2.0, free_flow * 1.3);
  }
  for (const SeedSpeed& s : seeds) out[s.road] = s.speed_kmh;
  return out;
}

}  // namespace trendspeed
