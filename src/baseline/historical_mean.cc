#include "baseline/historical_mean.h"

#include "util/logging.h"

namespace trendspeed {

HistoricalMeanEstimator::HistoricalMeanEstimator(const RoadNetwork* net,
                                                 const HistoricalDb* db)
    : net_(net), db_(db) {
  TS_CHECK(net != nullptr);
  TS_CHECK(db != nullptr);
  TS_CHECK_EQ(net->num_roads(), db->num_roads());
}

Result<std::vector<double>> HistoricalMeanEstimator::Estimate(
    uint64_t slot, const std::vector<SeedSpeed>& seeds) const {
  std::vector<double> out(net_->num_roads());
  for (RoadId r = 0; r < net_->num_roads(); ++r) {
    out[r] = db_->HistoricalMeanOr(r, slot, net_->road(r).free_flow_kmh);
  }
  for (const SeedSpeed& s : seeds) {
    if (s.road >= out.size()) {
      return Status::InvalidArgument("seed road out of range");
    }
    out[s.road] = s.speed_kmh;
  }
  return out;
}

}  // namespace trendspeed
