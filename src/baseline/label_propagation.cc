#include "baseline/label_propagation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace trendspeed {

LabelPropagationEstimator::LabelPropagationEstimator(
    const RoadNetwork* net, const HistoricalDb* db,
    const LabelPropagationOptions& opts)
    : net_(net), db_(db), opts_(opts) {
  TS_CHECK(net != nullptr);
  TS_CHECK(db != nullptr);
}

Result<std::vector<double>> LabelPropagationEstimator::Estimate(
    uint64_t slot, const std::vector<SeedSpeed>& seeds) const {
  size_t n = net_->num_roads();
  std::vector<double> dev(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<bool> clamped(n, false);
  for (const SeedSpeed& s : seeds) {
    if (s.road >= n) return Status::InvalidArgument("seed road out of range");
    double hist =
        db_->HistoricalMeanOr(s.road, slot, net_->road(s.road).free_flow_kmh);
    dev[s.road] = hist > 0.0 ? s.speed_kmh / hist - 1.0 : 0.0;
    clamped[s.road] = true;
  }
  // Jacobi sweeps of the harmonic update with ridge shrinkage.
  uint32_t iter = 0;
  for (; iter < opts_.max_iters; ++iter) {
    double max_delta = 0.0;
    for (RoadId v = 0; v < n; ++v) {
      if (clamped[v]) {
        next[v] = dev[v];
        continue;
      }
      double sum = 0.0;
      size_t cnt = 0;
      for (RoadId u : net_->RoadSuccessors(v)) {
        sum += dev[u];
        ++cnt;
      }
      for (RoadId u : net_->RoadPredecessors(v)) {
        sum += dev[u];
        ++cnt;
      }
      double value = cnt > 0
                         ? sum / (static_cast<double>(cnt) + opts_.mu *
                                                                 static_cast<double>(cnt))
                         : 0.0;
      next[v] = value;
      max_delta = std::max(max_delta, std::fabs(value - dev[v]));
    }
    dev.swap(next);
    if (max_delta < opts_.tol) break;
  }
  last_iterations_ = iter + 1;

  std::vector<double> out(n);
  for (RoadId r = 0; r < n; ++r) {
    double free_flow = net_->road(r).free_flow_kmh;
    double hist = db_->HistoricalMeanOr(r, slot, free_flow);
    out[r] = std::clamp(hist * (1.0 + dev[r]), 2.0, free_flow * 1.3);
  }
  for (const SeedSpeed& s : seeds) out[s.road] = s.speed_kmh;
  return out;
}

}  // namespace trendspeed
