// Baseline: global least-squares ("global optimization" family).
//
// Per time slot, solves the full graph-regularized system
//     min_d  sum_{(i,j) in E} (d_i - d_j)^2 + mu * sum_i d_i^2
// with the seed deviations fixed, to high precision, via conjugate
// gradients on the road-adjacency Laplacian. This is the faithful stand-in
// for the whole-network optimization methods the paper reports its ~2
// orders of magnitude efficiency advantage against: accuracy is strong, but
// every estimate performs hundreds of full-graph sweeps, and the iteration
// count grows with network diameter.

#ifndef TRENDSPEED_BASELINE_GLOBAL_LSQ_H_
#define TRENDSPEED_BASELINE_GLOBAL_LSQ_H_

#include <vector>

#include "probe/history.h"
#include "roadnet/road_network.h"
#include "speed/propagation.h"
#include "util/status.h"

namespace trendspeed {

struct GlobalLsqOptions {
  /// Weak ridge: the near-pure harmonic interpolation the global methods
  /// solve. Smaller mu is more accurate and conditions the system worse
  /// (more CG iterations) — the accuracy/latency trade the paper reports.
  double mu = 0.001;
  double cg_tol = 1e-8;
  uint32_t max_cg_iters = 2000;
  /// Solve the system with a dense Cholesky factorization instead of CG —
  /// the O(n^3) cost profile of the direct solvers the original global-
  /// optimization baselines used. Same answer, vastly slower at scale.
  bool use_direct_solver = false;
};

class GlobalLsqEstimator {
 public:
  GlobalLsqEstimator(const RoadNetwork* net, const HistoricalDb* db,
                     const GlobalLsqOptions& opts = {});

  Result<std::vector<double>> Estimate(uint64_t slot,
                                       const std::vector<SeedSpeed>& seeds) const;

  /// CG iterations used by the last Estimate (efficiency reporting).
  uint32_t last_iterations() const { return last_iterations_; }

 private:
  const RoadNetwork* net_;
  const HistoricalDb* db_;
  GlobalLsqOptions opts_;
  mutable uint32_t last_iterations_ = 0;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_BASELINE_GLOBAL_LSQ_H_
