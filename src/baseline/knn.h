// Baseline: k-nearest-seed spatial interpolation.
//
// Each road takes the inverse-distance-weighted mean of the relative
// deviations of its k nearest seeds (road-adjacency hop distance) and
// applies it to its own historical mean. Ignores correlation strength and
// trends — the classic geo-interpolation approach the paper compares with.

#ifndef TRENDSPEED_BASELINE_KNN_H_
#define TRENDSPEED_BASELINE_KNN_H_

#include <vector>

#include "probe/history.h"
#include "roadnet/road_network.h"
#include "speed/propagation.h"
#include "util/status.h"

namespace trendspeed {

struct KnnOptions {
  uint32_t k = 4;
  /// Seeds farther than this many hops do not influence a road.
  uint32_t max_hops = 10;
};

class KnnEstimator {
 public:
  KnnEstimator(const RoadNetwork* net, const HistoricalDb* db,
               const KnnOptions& opts = {});

  Result<std::vector<double>> Estimate(uint64_t slot,
                                       const std::vector<SeedSpeed>& seeds) const;

 private:
  const RoadNetwork* net_;
  const HistoricalDb* db_;
  KnnOptions opts_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_BASELINE_KNN_H_
