#include "baseline/global_lsq.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/matrix.h"

namespace trendspeed {

GlobalLsqEstimator::GlobalLsqEstimator(const RoadNetwork* net,
                                       const HistoricalDb* db,
                                       const GlobalLsqOptions& opts)
    : net_(net), db_(db), opts_(opts) {
  TS_CHECK(net != nullptr);
  TS_CHECK(db != nullptr);
}

Result<std::vector<double>> GlobalLsqEstimator::Estimate(
    uint64_t slot, const std::vector<SeedSpeed>& seeds) const {
  size_t n = net_->num_roads();
  std::vector<double> fixed(n, 0.0);
  std::vector<bool> clamped(n, false);
  for (const SeedSpeed& s : seeds) {
    if (s.road >= n) return Status::InvalidArgument("seed road out of range");
    double hist =
        db_->HistoricalMeanOr(s.road, slot, net_->road(s.road).free_flow_kmh);
    fixed[s.road] = hist > 0.0 ? s.speed_kmh / hist - 1.0 : 0.0;
    clamped[s.road] = true;
  }

  // Matrix-free multiply y = (L + mu I) x restricted to free variables,
  // with clamped entries contributing to the right-hand side.
  auto degree_of = [&](RoadId v) {
    return static_cast<double>(net_->RoadSuccessors(v).size() +
                               net_->RoadPredecessors(v).size());
  };
  auto apply = [&](const std::vector<double>& x, std::vector<double>* y) {
    for (RoadId v = 0; v < n; ++v) {
      if (clamped[v]) {
        (*y)[v] = 0.0;
        continue;
      }
      double acc = (degree_of(v) + opts_.mu) * x[v];
      for (RoadId u : net_->RoadSuccessors(v)) {
        if (!clamped[u]) acc -= x[u];
      }
      for (RoadId u : net_->RoadPredecessors(v)) {
        if (!clamped[u]) acc -= x[u];
      }
      (*y)[v] = acc;
    }
  };
  // b = sum over clamped neighbours of their fixed deviation.
  std::vector<double> b(n, 0.0);
  for (RoadId v = 0; v < n; ++v) {
    if (clamped[v]) continue;
    double acc = 0.0;
    for (RoadId u : net_->RoadSuccessors(v)) {
      if (clamped[u]) acc += fixed[u];
    }
    for (RoadId u : net_->RoadPredecessors(v)) {
      if (clamped[u]) acc += fixed[u];
    }
    b[v] = acc;
  }

  if (opts_.use_direct_solver) {
    // Dense solve over the free variables.
    std::vector<RoadId> free_ids;
    std::vector<uint32_t> index(n, UINT32_MAX);
    for (RoadId v = 0; v < n; ++v) {
      if (!clamped[v]) {
        index[v] = static_cast<uint32_t>(free_ids.size());
        free_ids.push_back(v);
      }
    }
    size_t m = free_ids.size();
    Matrix a(m, m);
    std::vector<double> rhs(m);
    for (size_t fi = 0; fi < m; ++fi) {
      RoadId v = free_ids[fi];
      a(fi, fi) = degree_of(v) + opts_.mu;
      auto couple = [&](RoadId u) {
        if (!clamped[u]) a(fi, index[u]) -= 1.0;
      };
      for (RoadId u : net_->RoadSuccessors(v)) couple(u);
      for (RoadId u : net_->RoadPredecessors(v)) couple(u);
      rhs[fi] = b[v];
    }
    TS_ASSIGN_OR_RETURN(std::vector<double> sol, CholeskySolve(a, rhs));
    last_iterations_ = 1;
    std::vector<double> out(n);
    for (RoadId v = 0; v < n; ++v) {
      if (clamped[v]) continue;
      double free_flow = net_->road(v).free_flow_kmh;
      double hist = db_->HistoricalMeanOr(v, slot, free_flow);
      out[v] = std::clamp(hist * (1.0 + sol[index[v]]), 2.0, free_flow * 1.3);
    }
    for (const SeedSpeed& s : seeds) out[s.road] = s.speed_kmh;
    return out;
  }

  // Conjugate gradients from zero.
  std::vector<double> x(n, 0.0), r = b, p = b, ap(n, 0.0);
  double rs = 0.0;
  for (RoadId v = 0; v < n; ++v) {
    if (!clamped[v]) rs += r[v] * r[v];
  }
  double b_norm = std::sqrt(rs);
  uint32_t iter = 0;
  if (b_norm > 0.0) {
    for (; iter < opts_.max_cg_iters; ++iter) {
      apply(p, &ap);
      double p_ap = 0.0;
      for (RoadId v = 0; v < n; ++v) {
        if (!clamped[v]) p_ap += p[v] * ap[v];
      }
      if (p_ap <= 0.0) break;
      double alpha = rs / p_ap;
      double rs_new = 0.0;
      for (RoadId v = 0; v < n; ++v) {
        if (clamped[v]) continue;
        x[v] += alpha * p[v];
        r[v] -= alpha * ap[v];
        rs_new += r[v] * r[v];
      }
      if (std::sqrt(rs_new) < opts_.cg_tol * b_norm) {
        rs = rs_new;
        ++iter;
        break;
      }
      double beta = rs_new / rs;
      rs = rs_new;
      for (RoadId v = 0; v < n; ++v) {
        if (!clamped[v]) p[v] = r[v] + beta * p[v];
      }
    }
  }
  last_iterations_ = iter;

  std::vector<double> out(n);
  for (RoadId v = 0; v < n; ++v) {
    if (clamped[v]) {
      // Seeds echo their observation exactly.
      continue;
    }
    double free_flow = net_->road(v).free_flow_kmh;
    double hist = db_->HistoricalMeanOr(v, slot, free_flow);
    out[v] = std::clamp(hist * (1.0 + x[v]), 2.0, free_flow * 1.3);
  }
  for (const SeedSpeed& s : seeds) out[s.road] = s.speed_kmh;
  return out;
}

}  // namespace trendspeed
