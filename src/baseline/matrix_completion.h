// Baseline: low-rank matrix completion (compressed-sensing family).
//
// Offline, ALS factorizes the observed (road x slot) deviation matrix into
// road factors U and slot factors V. Online, the current slot's latent
// vector z is solved from the seed observations (ridge least squares over
// the seed rows of U), and every road's deviation is predicted as u_i . z.

#ifndef TRENDSPEED_BASELINE_MATRIX_COMPLETION_H_
#define TRENDSPEED_BASELINE_MATRIX_COMPLETION_H_

#include <vector>

#include "probe/history.h"
#include "roadnet/road_network.h"
#include "speed/propagation.h"
#include "util/status.h"

namespace trendspeed {

struct MatrixCompletionOptions {
  uint32_t rank = 8;
  uint32_t als_iterations = 12;
  double lambda = 0.5;
  uint64_t seed = 5;
};

class MatrixCompletionEstimator {
 public:
  /// Trains road factors via ALS over the historical deviation matrix.
  static Result<MatrixCompletionEstimator> Train(
      const RoadNetwork* net, const HistoricalDb* db,
      const MatrixCompletionOptions& opts = {});

  Result<std::vector<double>> Estimate(uint64_t slot,
                                       const std::vector<SeedSpeed>& seeds) const;

  /// Training RMSE over observed history cells (fit diagnostic).
  double train_rmse() const { return train_rmse_; }

 private:
  MatrixCompletionEstimator() = default;

  const RoadNetwork* net_ = nullptr;
  const HistoricalDb* db_ = nullptr;
  MatrixCompletionOptions opts_;
  /// Row-major (num_roads x rank) road factors.
  std::vector<double> u_;
  double train_rmse_ = 0.0;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_BASELINE_MATRIX_COMPLETION_H_
