// Baseline: predict every road's historical mean for the current time
// bucket; seeds report their observed speed. The floor any real-time method
// must beat.

#ifndef TRENDSPEED_BASELINE_HISTORICAL_MEAN_H_
#define TRENDSPEED_BASELINE_HISTORICAL_MEAN_H_

#include <vector>

#include "probe/history.h"
#include "roadnet/road_network.h"
#include "speed/propagation.h"
#include "util/status.h"

namespace trendspeed {

class HistoricalMeanEstimator {
 public:
  HistoricalMeanEstimator(const RoadNetwork* net, const HistoricalDb* db);

  /// Speeds for every road at `slot`.
  Result<std::vector<double>> Estimate(uint64_t slot,
                                       const std::vector<SeedSpeed>& seeds) const;

 private:
  const RoadNetwork* net_;
  const HistoricalDb* db_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_BASELINE_HISTORICAL_MEAN_H_
