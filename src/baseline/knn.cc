#include "baseline/knn.h"

#include <algorithm>
#include <cmath>

#include "roadnet/shortest_path.h"
#include "util/logging.h"

namespace trendspeed {

KnnEstimator::KnnEstimator(const RoadNetwork* net, const HistoricalDb* db,
                           const KnnOptions& opts)
    : net_(net), db_(db), opts_(opts) {
  TS_CHECK(net != nullptr);
  TS_CHECK(db != nullptr);
  TS_CHECK_GE(opts.k, 1u);
}

Result<std::vector<double>> KnnEstimator::Estimate(
    uint64_t slot, const std::vector<SeedSpeed>& seeds) const {
  size_t n = net_->num_roads();
  // Per road, the (hops, deviation) of nearby seeds.
  std::vector<std::vector<std::pair<uint32_t, double>>> near(n);
  for (const SeedSpeed& s : seeds) {
    if (s.road >= n) return Status::InvalidArgument("seed road out of range");
    double hist =
        db_->HistoricalMeanOr(s.road, slot, net_->road(s.road).free_flow_kmh);
    double dev = hist > 0.0 ? s.speed_kmh / hist - 1.0 : 0.0;
    std::vector<uint32_t> dist =
        RoadHopDistances(*net_, s.road, opts_.max_hops);
    for (RoadId r = 0; r < n; ++r) {
      if (dist[r] != kUnreachable) near[r].emplace_back(dist[r], dev);
    }
  }
  std::vector<double> out(n);
  for (RoadId r = 0; r < n; ++r) {
    double free_flow = net_->road(r).free_flow_kmh;
    double hist = db_->HistoricalMeanOr(r, slot, free_flow);
    auto& cand = near[r];
    if (cand.empty()) {
      out[r] = hist;
      continue;
    }
    size_t k = std::min<size_t>(opts_.k, cand.size());
    std::partial_sort(cand.begin(), cand.begin() + static_cast<long>(k),
                      cand.end());
    double wsum = 0.0, dsum = 0.0;
    for (size_t i = 0; i < k; ++i) {
      double w = 1.0 / (1.0 + static_cast<double>(cand[i].first));
      wsum += w;
      dsum += w * cand[i].second;
    }
    double dev = dsum / wsum;
    out[r] = std::clamp(hist * (1.0 + dev), 2.0, free_flow * 1.3);
  }
  for (const SeedSpeed& s : seeds) out[s.road] = s.speed_kmh;
  return out;
}

}  // namespace trendspeed
