// Baseline: graph-regularized label propagation ("global optimization").
//
// Deviations diffuse over the full road-adjacency graph until convergence,
// with seeds clamped — iteratively solving the harmonic/energy-minimization
// system min sum_(i,j) (d_i - d_j)^2 + mu * sum_i d_i^2. Accuracy is decent
// but every estimate touches the whole graph for hundreds of sweeps; this is
// the method family against which the paper reports its ~2 orders of
// magnitude efficiency advantage.

#ifndef TRENDSPEED_BASELINE_LABEL_PROPAGATION_H_
#define TRENDSPEED_BASELINE_LABEL_PROPAGATION_H_

#include <vector>

#include "probe/history.h"
#include "roadnet/road_network.h"
#include "speed/propagation.h"
#include "util/status.h"

namespace trendspeed {

struct LabelPropagationOptions {
  uint32_t max_iters = 300;
  /// Ridge pull toward zero deviation (prevents drift in sparse regions).
  double mu = 0.05;
  double tol = 1e-7;
};

class LabelPropagationEstimator {
 public:
  LabelPropagationEstimator(const RoadNetwork* net, const HistoricalDb* db,
                            const LabelPropagationOptions& opts = {});

  Result<std::vector<double>> Estimate(uint64_t slot,
                                       const std::vector<SeedSpeed>& seeds) const;

  /// Iterations used by the last Estimate call (efficiency reporting).
  uint32_t last_iterations() const { return last_iterations_; }

 private:
  const RoadNetwork* net_;
  const HistoricalDb* db_;
  LabelPropagationOptions opts_;
  mutable uint32_t last_iterations_ = 0;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_BASELINE_LABEL_PROPAGATION_H_
