// Random traffic incidents (accidents, closures) with spatial spillover.
//
// Incidents arrive as a Poisson process over the whole network; each one
// slows a road sharply for a bounded duration, with the slowdown decaying
// over hop distance (upstream queues, rubbernecking). Incidents inject the
// unpredictable, locally correlated disruptions that make pure historical
// prediction fail — the scenario that motivates crowdsourced seeds.

#ifndef TRENDSPEED_TRAFFIC_INCIDENTS_H_
#define TRENDSPEED_TRAFFIC_INCIDENTS_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"
#include "util/random.h"

namespace trendspeed {

struct IncidentOptions {
  /// Expected network-wide incident arrivals per slot.
  double rate_per_slot = 0.03;
  /// Remaining-speed multiplier at the incident road: U(min, max).
  double severity_min = 0.25;
  double severity_max = 0.6;
  /// Duration in slots: U(min, max).
  uint32_t duration_min = 3;
  uint32_t duration_max = 12;
  /// How far (road hops) the upstream queue spills, halving per hop.
  uint32_t spill_hops = 2;
  /// Downstream starvation: roads immediately *after* the incident receive
  /// less traffic and speed up by up to this fraction of free flow,
  /// decaying per hop. Real queueing physics — and the source of the
  /// anti-correlated road pairs the correlation miner must discover.
  double starvation_boost = 0.25;
  uint32_t starvation_hops = 2;
};

/// One active incident.
struct Incident {
  RoadId road = kInvalidRoad;
  double severity = 1.0;  ///< speed multiplier at the incident road
  uint64_t start_slot = 0;
  uint64_t end_slot = 0;  ///< exclusive
};

/// Generates incidents and exposes the per-road slowdown multiplier per slot.
class IncidentProcess {
 public:
  IncidentProcess(const RoadNetwork* net, const IncidentOptions& opts,
                  Rng rng);

  /// Advances to `slot` (monotonically) and returns the multiplicative
  /// slowdown per road in (0, 1]; 1 = unaffected.
  const std::vector<double>& FactorsAt(uint64_t slot);

  /// Incidents active at the last queried slot.
  const std::vector<Incident>& active() const { return active_; }

  /// All incidents ever spawned (for analysis/tests).
  const std::vector<Incident>& history() const { return history_; }

 private:
  void Spawn(uint64_t slot);

  const RoadNetwork* net_;
  IncidentOptions opts_;
  Rng rng_;
  uint64_t next_slot_ = 0;
  std::vector<Incident> active_;
  std::vector<Incident> history_;
  std::vector<double> factors_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_TRAFFIC_INCIDENTS_H_
