#include "traffic/incidents.h"

#include <algorithm>

#include "roadnet/shortest_path.h"
#include "util/logging.h"

namespace trendspeed {

IncidentProcess::IncidentProcess(const RoadNetwork* net,
                                 const IncidentOptions& opts, Rng rng)
    : net_(net), opts_(opts), rng_(rng), factors_(net->num_roads(), 1.0) {
  TS_CHECK(net != nullptr);
  TS_CHECK_GE(opts.severity_min, 0.01);
  TS_CHECK_LE(opts.severity_max, 1.0);
  TS_CHECK_LE(opts.severity_min, opts.severity_max);
  TS_CHECK_GE(opts.duration_max, opts.duration_min);
  TS_CHECK_GE(opts.duration_min, 1u);
}

void IncidentProcess::Spawn(uint64_t slot) {
  int arrivals = rng_.NextPoisson(opts_.rate_per_slot);
  for (int i = 0; i < arrivals; ++i) {
    Incident inc;
    inc.road = static_cast<RoadId>(rng_.NextIndex(net_->num_roads()));
    inc.severity = rng_.Uniform(opts_.severity_min, opts_.severity_max);
    inc.start_slot = slot;
    uint32_t duration =
        opts_.duration_min +
        rng_.NextBounded(opts_.duration_max - opts_.duration_min + 1);
    inc.end_slot = slot + duration;
    active_.push_back(inc);
    history_.push_back(inc);
  }
}

const std::vector<double>& IncidentProcess::FactorsAt(uint64_t slot) {
  TS_CHECK_GE(slot, next_slot_ == 0 ? 0 : next_slot_ - 1)
      << "IncidentProcess must be advanced monotonically";
  while (next_slot_ <= slot) {
    Spawn(next_slot_);
    ++next_slot_;
  }
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](const Incident& inc) {
                                 return inc.end_slot <= slot;
                               }),
                active_.end());
  std::fill(factors_.begin(), factors_.end(), 1.0);
  for (const Incident& inc : active_) {
    if (inc.start_slot > slot) continue;
    // Upstream queue: the incident road and its predecessors slow down,
    // halving the severity gap per hop against traffic direction.
    std::vector<std::pair<RoadId, uint32_t>> frontier = {{inc.road, 0}};
    std::vector<bool> seen(net_->num_roads(), false);
    seen[inc.road] = true;
    while (!frontier.empty()) {
      auto [r, hops] = frontier.back();
      frontier.pop_back();
      double gap = 1.0 - inc.severity;
      double local = 1.0 - gap / static_cast<double>(1u << hops);
      factors_[r] = std::min(factors_[r], local);
      if (hops >= opts_.spill_hops) continue;
      for (RoadId p : net_->RoadPredecessors(r)) {
        if (!seen[p]) {
          seen[p] = true;
          frontier.emplace_back(p, hops + 1);
        }
      }
    }
    // Downstream starvation: successor roads receive less inflow and run
    // faster than normal, decaying per hop.
    std::fill(seen.begin(), seen.end(), false);
    seen[inc.road] = true;
    frontier = {{inc.road, 0}};
    while (!frontier.empty()) {
      auto [r, hops] = frontier.back();
      frontier.pop_back();
      if (hops > 0) {
        double boost = 1.0 + opts_.starvation_boost * (1.0 - inc.severity) /
                                 static_cast<double>(1u << (hops - 1));
        // Starvation only applies where no queue factor is already active.
        if (factors_[r] >= 1.0) factors_[r] = std::max(factors_[r], boost);
      }
      if (hops >= opts_.starvation_hops) continue;
      for (RoadId s : net_->RoadSuccessors(r)) {
        if (!seen[s]) {
          seen[s] = true;
          frontier.emplace_back(s, hops + 1);
        }
      }
    }
  }
  return factors_;
}

}  // namespace trendspeed
