// Spatio-temporally correlated disturbance field over road segments.
//
// This is the component that gives the synthetic city the property the
// paper's model exploits: *nearby roads deviate from their historical norm
// together*. Each road carries a latent log-deviation that evolves as an
// AR(1) process in time; after each innovation the field is smoothed by a few
// rounds of neighbour averaging over the road-adjacency graph, which couples
// adjacent roads (a graph diffusion, i.e. a discrete heat kernel).

#ifndef TRENDSPEED_TRAFFIC_DISTURBANCE_H_
#define TRENDSPEED_TRAFFIC_DISTURBANCE_H_

#include <vector>

#include "roadnet/road_network.h"
#include "util/random.h"

namespace trendspeed {

struct DisturbanceOptions {
  /// AR(1) persistence of the per-road latent state across slots, in [0, 1).
  double temporal_rho = 0.88;
  /// Standard deviation of the per-slot innovation (log-speed units),
  /// before spatial smoothing.
  double shock_sigma = 0.16;
  /// Rounds of neighbour averaging applied to each innovation; controls
  /// the spatial correlation length of the field.
  uint32_t diffusion_rounds = 3;
  /// Weight pulled from the neighbour mean per round, in [0, 1].
  double diffusion_alpha = 0.6;
  /// Diffusion weight of an edge between roads of *different* classes,
  /// relative to 1.0 for same-class edges. Congestion travels along
  /// corridors (a jammed arterial jams the next arterial segment), but
  /// crosses into side streets far more weakly — the anisotropy that makes
  /// learned correlation structure genuinely more informative than
  /// isotropic hop distance.
  double cross_class_coupling = 0.2;
  /// Standard deviation of an additional *independent* AR(1) component per
  /// road (construction, parking, signal timing) that no neighbour shares.
  double idiosyncratic_sigma = 0.03;
};

/// Evolving per-road disturbance field; Step() advances one time slot.
class DisturbanceField {
 public:
  DisturbanceField(const RoadNetwork* net, const DisturbanceOptions& opts,
                   Rng rng);

  /// Advances one slot and returns the current log-deviation per road.
  const std::vector<double>& Step();

  /// Current combined state (shared + idiosyncratic) without advancing.
  const std::vector<double>& state() const { return sum_; }

 private:
  const RoadNetwork* net_;
  DisturbanceOptions opts_;
  Rng rng_;
  std::vector<double> state_;       // shared, diffused component
  std::vector<double> local_;       // independent per-road component
  std::vector<double> sum_;         // state_ + local_
  std::vector<double> innovation_;  // per-step smoothed shock
  std::vector<double> scratch_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_TRAFFIC_DISTURBANCE_H_
