#include "traffic/simulator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace trendspeed {

TrafficSimulator::TrafficSimulator(const RoadNetwork* net,
                                   const TrafficOptions& opts)
    : net_(net),
      opts_(opts),
      clock_{opts.slots_per_day},
      disturbance_(net, opts.disturbance, Rng(opts.seed, /*stream=*/101)),
      incidents_(net, opts.incidents, Rng(opts.seed, /*stream=*/202)),
      speeds_(net->num_roads(), 0.0) {
  TS_CHECK(net != nullptr);
  TS_CHECK_GT(opts.slots_per_day, 0u);
}

const std::vector<double>& TrafficSimulator::Step() {
  uint64_t slot = next_slot_++;
  double hour = clock_.HourOfDay(slot);
  bool weekend = clock_.IsWeekend(slot);
  const std::vector<double>& dist = disturbance_.Step();
  const std::vector<double>& inc = incidents_.FactorsAt(slot);
  for (RoadId r = 0; r < net_->num_roads(); ++r) {
    const Road& road = net_->road(r);
    double base = BaseCongestionFactor(road.road_class, hour, weekend);
    double v = road.free_flow_kmh * base * std::exp(dist[r]) * inc[r];
    double hi = road.free_flow_kmh * opts_.max_over_free_flow;
    speeds_[r] = std::clamp(v, opts_.min_speed_kmh, hi);
  }
  return speeds_;
}

Result<SpeedField> GenerateSpeedField(const RoadNetwork& net,
                                      const TrafficOptions& opts,
                                      uint32_t days) {
  if (days == 0) return Status::InvalidArgument("days must be positive");
  TrafficSimulator sim(&net, opts);
  SpeedField field;
  field.slots_per_day = opts.slots_per_day;
  uint64_t total = static_cast<uint64_t>(days) * opts.slots_per_day;
  field.speeds.reserve(total);
  for (uint64_t s = 0; s < total; ++s) {
    field.speeds.push_back(sim.Step());
  }
  return field;
}

}  // namespace trendspeed
