#include "traffic/profiles.h"

#include <cmath>

namespace trendspeed {

namespace {

// Smooth bump centered at `center` hours with the given half-width; the
// returned value is `depth` at the center and ~0 beyond one width.
double Dip(double hour, double center, double width, double depth) {
  double z = (hour - center) / width;
  return depth * std::exp(-0.5 * z * z);
}

// How strongly a road class responds to rush-hour demand.
double ClassSensitivity(RoadClass c) {
  switch (c) {
    case RoadClass::kHighway:
      return 0.85;  // congests hard but recovers between peaks
    case RoadClass::kArterial:
      return 1.0;  // the reference: deepest, widest rush dips
    case RoadClass::kLocal:
      return 0.55;  // local streets feel peaks but less severely
  }
  return 1.0;
}

}  // namespace

double BaseCongestionFactor(RoadClass road_class, double hour_of_day,
                            bool weekend) {
  double sensitivity = ClassSensitivity(road_class);
  double dip = 0.0;
  if (!weekend) {
    dip += Dip(hour_of_day, 8.0, 1.3, 0.45);   // AM rush
    dip += Dip(hour_of_day, 18.0, 1.6, 0.50);  // PM rush
    dip += Dip(hour_of_day, 12.5, 2.5, 0.12);  // midday plateau
  } else {
    dip += Dip(hour_of_day, 11.0, 2.2, 0.25);  // late-morning shopping
    dip += Dip(hour_of_day, 17.0, 2.5, 0.18);  // afternoon return
  }
  double factor = 1.0 - sensitivity * dip;
  // A floor keeps speeds physical even when dips overlap.
  return factor < 0.25 ? 0.25 : factor;
}

}  // namespace trendspeed
