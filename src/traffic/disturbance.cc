#include "traffic/disturbance.h"

#include "util/logging.h"

namespace trendspeed {

DisturbanceField::DisturbanceField(const RoadNetwork* net,
                                   const DisturbanceOptions& opts, Rng rng)
    : net_(net), opts_(opts), rng_(rng),
      state_(net->num_roads(), 0.0),
      local_(net->num_roads(), 0.0),
      sum_(net->num_roads(), 0.0),
      innovation_(net->num_roads(), 0.0),
      scratch_(net->num_roads(), 0.0) {
  TS_CHECK(net != nullptr);
  TS_CHECK_GE(opts.temporal_rho, 0.0);
  TS_CHECK_LT(opts.temporal_rho, 1.0);
  TS_CHECK_GE(opts.diffusion_alpha, 0.0);
  TS_CHECK_LE(opts.diffusion_alpha, 1.0);
  TS_CHECK_GE(opts.cross_class_coupling, 0.0);
  TS_CHECK_LE(opts.cross_class_coupling, 1.0);
  // Burn in so the process starts from its stationary distribution rather
  // than the all-zero state.
  for (int i = 0; i < 50; ++i) Step();
}

const std::vector<double>& DisturbanceField::Step() {
  size_t n = state_.size();
  // Fresh innovations, then k rounds of class-aware spatial smoothing.
  // Smoothing the *innovation* (not the persistent state) fixes the spatial
  // correlation length: a shock spreads over a ~k-hop corridor ball and no
  // further, so nearby same-class roads co-move strongly while distant
  // roads stay independent.
  for (size_t i = 0; i < n; ++i) {
    innovation_[i] = rng_.Gaussian(0.0, opts_.shock_sigma);
  }
  for (uint32_t round = 0; round < opts_.diffusion_rounds; ++round) {
    for (RoadId r = 0; r < n; ++r) {
      RoadClass cls = net_->road(r).road_class;
      double wsum = 0.0;
      double acc = 0.0;
      auto take = [&](RoadId v) {
        double w = net_->road(v).road_class == cls
                       ? 1.0
                       : opts_.cross_class_coupling;
        wsum += w;
        acc += w * innovation_[v];
      };
      for (RoadId v : net_->RoadSuccessors(r)) take(v);
      for (RoadId v : net_->RoadPredecessors(r)) take(v);
      if (wsum <= 0.0) {
        scratch_[r] = innovation_[r];
      } else {
        scratch_[r] = (1.0 - opts_.diffusion_alpha) * innovation_[r] +
                      opts_.diffusion_alpha * acc / wsum;
      }
    }
    innovation_.swap(scratch_);
  }
  // AR(1) accumulation in time + the independent per-road component.
  for (size_t i = 0; i < n; ++i) {
    state_[i] = opts_.temporal_rho * state_[i] + innovation_[i];
    local_[i] = opts_.temporal_rho * local_[i] +
                rng_.Gaussian(0.0, opts_.idiosyncratic_sigma);
    sum_[i] = state_[i] + local_[i];
  }
  return sum_;
}

}  // namespace trendspeed
