// Ground-truth traffic dynamics simulator.
//
// speed(road, slot) = free_flow
//                   * BaseCongestionFactor(class, hour, weekend)   [profiles]
//                   * exp(disturbance)                             [disturbance]
//                   * incident factor                              [incidents]
// clamped to a physical range. This composition gives every road a weekly
// periodic "historical normal" plus spatially correlated deviations from it —
// the two statistical properties the paper's model is built on.

#ifndef TRENDSPEED_TRAFFIC_SIMULATOR_H_
#define TRENDSPEED_TRAFFIC_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"
#include "traffic/disturbance.h"
#include "traffic/incidents.h"
#include "traffic/profiles.h"
#include "util/random.h"
#include "util/status.h"

namespace trendspeed {

struct TrafficOptions {
  uint32_t slots_per_day = kDefaultSlotsPerDay;
  DisturbanceOptions disturbance;
  IncidentOptions incidents;
  /// Hard bounds on simulated speed as multiples of free flow.
  double min_speed_kmh = 3.0;
  double max_over_free_flow = 1.15;
  uint64_t seed = 42;
};

/// Step-based simulator; each Step() yields the true speeds for one slot.
class TrafficSimulator {
 public:
  TrafficSimulator(const RoadNetwork* net, const TrafficOptions& opts);

  /// Advances one slot and returns the true speed (km/h) of every road.
  const std::vector<double>& Step();

  /// Global slot index of the speeds last returned by Step(); the first call
  /// produces slot 0. Precondition: Step() called at least once.
  uint64_t current_slot() const { return next_slot_ - 1; }

  const SlotClock& clock() const { return clock_; }
  const RoadNetwork& network() const { return *net_; }
  const IncidentProcess& incidents() const { return incidents_; }

 private:
  const RoadNetwork* net_;
  TrafficOptions opts_;
  SlotClock clock_;
  DisturbanceField disturbance_;
  IncidentProcess incidents_;
  uint64_t next_slot_ = 0;
  std::vector<double> speeds_;
};

/// Dense ground-truth speeds for `num_slots` consecutive slots.
/// speeds[slot][road], row per slot.
struct SpeedField {
  uint32_t slots_per_day = kDefaultSlotsPerDay;
  std::vector<std::vector<double>> speeds;

  size_t num_slots() const { return speeds.size(); }
  size_t num_roads() const { return speeds.empty() ? 0 : speeds[0].size(); }
  double at(uint64_t slot, RoadId road) const { return speeds[slot][road]; }
};

/// Runs the simulator for `days` full days and materializes the field.
Result<SpeedField> GenerateSpeedField(const RoadNetwork& net,
                                      const TrafficOptions& opts,
                                      uint32_t days);

}  // namespace trendspeed

#endif  // TRENDSPEED_TRAFFIC_SIMULATOR_H_
