// Deterministic time-of-day congestion profiles per road class.
//
// A profile maps (road class, slot of day, weekend?) to a multiplier in
// (0, 1] applied to free-flow speed. The shapes encode the empirical pattern
// the paper's datasets exhibit: weekday AM/PM rush-hour dips (deepest on
// arterials), a shallow midday plateau, free-flowing nights, and a single
// late-morning weekend dip.

#ifndef TRENDSPEED_TRAFFIC_PROFILES_H_
#define TRENDSPEED_TRAFFIC_PROFILES_H_

#include <cstdint>

#include "roadnet/road_network.h"

namespace trendspeed {

/// Number of slots in one day at the paper's 10-minute granularity.
inline constexpr uint32_t kDefaultSlotsPerDay = 144;

/// Calendar helpers over a global slot counter (day 0 is a Monday).
struct SlotClock {
  uint32_t slots_per_day = kDefaultSlotsPerDay;

  uint32_t SlotOfDay(uint64_t global_slot) const {
    return static_cast<uint32_t>(global_slot % slots_per_day);
  }
  uint32_t DayIndex(uint64_t global_slot) const {
    return static_cast<uint32_t>(global_slot / slots_per_day);
  }
  uint32_t DayOfWeek(uint64_t global_slot) const {
    return DayIndex(global_slot) % 7;
  }
  bool IsWeekend(uint64_t global_slot) const {
    uint32_t dow = DayOfWeek(global_slot);
    return dow == 5 || dow == 6;
  }
  uint32_t SlotOfWeek(uint64_t global_slot) const {
    return DayOfWeek(global_slot) * slots_per_day + SlotOfDay(global_slot);
  }
  /// Hour of day in [0, 24).
  double HourOfDay(uint64_t global_slot) const {
    return 24.0 * static_cast<double>(SlotOfDay(global_slot)) /
           static_cast<double>(slots_per_day);
  }
};

/// Base congestion multiplier in (0, 1]; 1 = free flow.
double BaseCongestionFactor(RoadClass road_class, double hour_of_day,
                            bool weekend);

}  // namespace trendspeed

#endif  // TRENDSPEED_TRAFFIC_PROFILES_H_
