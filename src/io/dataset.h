// Canned evaluation datasets.
//
// The paper evaluates on two proprietary taxi-GPS corpora. These builders
// produce the synthetic equivalents (see DESIGN.md, "Substitutions"):
//   CityA — ring-radial ("Beijing-like") network, heavier congestion,
//           full probe-fleet data pipeline (GPS -> map matching -> history);
//   CityB — grid ("second city") network, lighter congestion.
// Each dataset = road network + ground-truth speed field spanning a history
// period and a held-out test period + a HistoricalDb built from probe
// observations of the history period only.

#ifndef TRENDSPEED_IO_DATASET_H_
#define TRENDSPEED_IO_DATASET_H_

#include <string>

#include "probe/history.h"
#include "roadnet/generators.h"
#include "roadnet/road_network.h"
#include "traffic/simulator.h"
#include "util/status.h"

namespace trendspeed {

struct Dataset {
  std::string name;
  RoadNetwork net;
  /// Ground truth over history + test days.
  SpeedField truth;
  /// Probe history of the first `history_days` only.
  HistoricalDb history;
  uint32_t history_days = 0;
  uint32_t test_days = 0;

  uint64_t first_test_slot() const {
    return static_cast<uint64_t>(history_days) * truth.slots_per_day;
  }
  uint64_t num_slots() const { return truth.num_slots(); }
};

struct DatasetOptions {
  uint32_t history_days = 21;
  uint32_t test_days = 2;
  TrafficOptions traffic;
  /// When true, history comes from the full GPS pipeline (probe fleet, map
  /// matching); when false, from the fast idealized collector.
  bool use_probe_fleet = true;
  ProbeFleetOptions fleet;
  double idealized_coverage = 0.3;
  double idealized_noise_kmh = 2.5;
  uint64_t seed = 2024;
};

/// Builds a dataset over an arbitrary network (takes ownership of `net`).
Result<Dataset> BuildDataset(std::string name, RoadNetwork net,
                             const DatasetOptions& opts);

/// Ring-radial city, ~1.3k directed road segments by default.
Result<Dataset> BuildCityA(const DatasetOptions& opts = {});

/// Grid city, ~0.9k directed road segments by default.
Result<Dataset> BuildCityB(const DatasetOptions& opts = {});

/// Small dataset for tests and the quickstart example (fast to build).
Result<Dataset> BuildTinyCity(const DatasetOptions& opts);
Result<Dataset> BuildTinyCity();

}  // namespace trendspeed

#endif  // TRENDSPEED_IO_DATASET_H_
