#include "io/snapshot_wire.h"

#include <cmath>

#include "util/logging.h"

namespace trendspeed {

namespace {

constexpr char kSnapshotTag[4] = {'T', 'S', 'S', 'N'};
constexpr char kLogTag[4] = {'T', 'S', 'S', 'L'};

}  // namespace

void AppendSpeedSnapshot(const SpeedSnapshot& snap, BinaryWriter* w) {
  TS_CHECK_EQ(snap.speed_kmh.size(), snap.deviation.size());
  w->PutTag(kSnapshotTag, kSnapshotWireVersion);
  w->PutU64(snap.slot);
  w->PutU64(snap.version);
  w->PutU32(snap.stale_slots);
  w->PutF64(snap.mean_speed_kmh);
  w->PutU64(snap.speed_kmh.size());
  for (size_t i = 0; i < snap.speed_kmh.size(); ++i) {
    w->PutF32(static_cast<float>(snap.speed_kmh[i]));
    w->PutF32(static_cast<float>(snap.deviation[i]));
  }
}

std::string EncodeSpeedSnapshot(const SpeedSnapshot& snap) {
  BinaryWriter w;
  AppendSpeedSnapshot(snap, &w);
  return w.buffer();
}

Result<SpeedSnapshot> DecodeSpeedSnapshot(BinaryReader* r) {
  TS_ASSIGN_OR_RETURN(uint32_t version, r->ExpectTag(kSnapshotTag));
  if (version != kSnapshotWireVersion) {
    return Status::InvalidArgument("unsupported snapshot wire version " +
                                   std::to_string(version));
  }
  SpeedSnapshot snap;
  TS_ASSIGN_OR_RETURN(snap.slot, r->GetU64());
  TS_ASSIGN_OR_RETURN(snap.version, r->GetU64());
  TS_ASSIGN_OR_RETURN(snap.stale_slots, r->GetU32());
  TS_ASSIGN_OR_RETURN(snap.mean_speed_kmh, r->GetF64());
  if (!std::isfinite(snap.mean_speed_kmh)) {
    return Status::InvalidArgument("non-finite mean speed on the wire");
  }
  TS_ASSIGN_OR_RETURN(uint64_t num_roads, r->GetU64());
  // 8 bytes per road: a count beyond the remaining bytes is corruption,
  // caught before any allocation it could size.
  if (num_roads > r->remaining() / 8) {
    return Status::InvalidArgument("snapshot frame truncated or corrupt");
  }
  snap.speed_kmh.reserve(num_roads);
  snap.deviation.reserve(num_roads);
  for (uint64_t i = 0; i < num_roads; ++i) {
    TS_ASSIGN_OR_RETURN(float speed, r->GetF32());
    TS_ASSIGN_OR_RETURN(float dev, r->GetF32());
    if (!std::isfinite(speed) || !std::isfinite(dev)) {
      return Status::InvalidArgument(
          "non-finite snapshot cell on the wire for road " +
          std::to_string(i));
    }
    snap.speed_kmh.push_back(static_cast<double>(speed));
    snap.deviation.push_back(static_cast<double>(dev));
  }
  // Derived, never trusted from the wire: the pair can't disagree.
  snap.stale = snap.stale_slots > 0;
  return snap;
}

Result<SpeedSnapshot> DecodeSpeedSnapshot(const std::string& bytes) {
  BinaryReader r(bytes);
  TS_ASSIGN_OR_RETURN(SpeedSnapshot snap, DecodeSpeedSnapshot(&r));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot frame");
  }
  return snap;
}

std::string EncodeSnapshotLog(const std::vector<SpeedSnapshot>& log) {
  BinaryWriter w;
  w.PutTag(kLogTag, kSnapshotWireVersion);
  w.PutU64(log.size());
  for (const SpeedSnapshot& snap : log) {
    AppendSpeedSnapshot(snap, &w);
  }
  return w.buffer();
}

Result<std::vector<SpeedSnapshot>> DecodeSnapshotLog(
    const std::string& bytes) {
  BinaryReader r(bytes);
  TS_ASSIGN_OR_RETURN(uint32_t version, r.ExpectTag(kLogTag));
  if (version != kSnapshotWireVersion) {
    return Status::InvalidArgument("unsupported snapshot wire version " +
                                   std::to_string(version));
  }
  TS_ASSIGN_OR_RETURN(uint64_t count, r.GetU64());
  // Every frame is at least the 44-byte fixed header (tag + version + slot
  // + snapshot_version + stale_slots + mean + road count).
  if (count > r.remaining() / 44) {
    return Status::InvalidArgument("snapshot log truncated or corrupt");
  }
  std::vector<SpeedSnapshot> log;
  log.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TS_ASSIGN_OR_RETURN(SpeedSnapshot snap, DecodeSpeedSnapshot(&r));
    log.push_back(std::move(snap));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot log");
  }
  return log;
}

}  // namespace trendspeed
