#include "io/obs_wire.h"

#include <cmath>
#include <map>

namespace trendspeed {

namespace {

constexpr char kBatchTag[4] = {'T', 'S', 'O', 'B'};
constexpr char kLogTag[4] = {'T', 'S', 'O', 'L'};

}  // namespace

void AppendObservationBatch(const ObservationBatch& batch, BinaryWriter* w) {
  w->PutTag(kBatchTag, kObsWireVersion);
  w->PutU64(batch.slot);
  w->PutU64(batch.observations.size());
  for (const SeedSpeed& s : batch.observations) {
    w->PutU32(s.road);
    w->PutF32(static_cast<float>(s.speed_kmh));
  }
}

std::string EncodeObservationBatch(const ObservationBatch& batch) {
  BinaryWriter w;
  AppendObservationBatch(batch, &w);
  return w.buffer();
}

Result<ObservationBatch> DecodeObservationBatch(BinaryReader* r) {
  TS_ASSIGN_OR_RETURN(uint32_t version, r->ExpectTag(kBatchTag));
  if (version != kObsWireVersion) {
    return Status::InvalidArgument("unsupported observation wire version " +
                                   std::to_string(version));
  }
  ObservationBatch batch;
  TS_ASSIGN_OR_RETURN(batch.slot, r->GetU64());
  TS_ASSIGN_OR_RETURN(uint64_t count, r->GetU64());
  // 8 bytes per record: a count beyond the remaining bytes is corruption,
  // caught before any allocation it could size.
  if (count > r->remaining() / 8) {
    return Status::InvalidArgument("observation batch truncated or corrupt");
  }
  batch.observations.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SeedSpeed s;
    TS_ASSIGN_OR_RETURN(s.road, r->GetU32());
    TS_ASSIGN_OR_RETURN(float speed, r->GetF32());
    if (!std::isfinite(speed)) {
      return Status::InvalidArgument(
          "non-finite speed on the wire for road " + std::to_string(s.road));
    }
    s.speed_kmh = static_cast<double>(speed);
    batch.observations.push_back(s);
  }
  return batch;
}

Result<ObservationBatch> DecodeObservationBatch(const std::string& bytes) {
  BinaryReader r(bytes);
  TS_ASSIGN_OR_RETURN(ObservationBatch batch, DecodeObservationBatch(&r));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after observation batch");
  }
  return batch;
}

std::string EncodeObservationLog(const std::vector<ObservationBatch>& log) {
  BinaryWriter w;
  w.PutTag(kLogTag, kObsWireVersion);
  w.PutU64(log.size());
  for (const ObservationBatch& batch : log) {
    AppendObservationBatch(batch, &w);
  }
  return w.buffer();
}

Result<std::vector<ObservationBatch>> DecodeObservationLog(
    const std::string& bytes) {
  BinaryReader r(bytes);
  TS_ASSIGN_OR_RETURN(uint32_t version, r.ExpectTag(kLogTag));
  if (version != kObsWireVersion) {
    return Status::InvalidArgument("unsupported observation wire version " +
                                   std::to_string(version));
  }
  TS_ASSIGN_OR_RETURN(uint64_t count, r.GetU64());
  // Every batch is at least a 16-byte header plus the 8-byte count field.
  if (count > r.remaining() / 24) {
    return Status::InvalidArgument("observation log truncated or corrupt");
  }
  std::vector<ObservationBatch> log;
  log.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TS_ASSIGN_OR_RETURN(ObservationBatch batch, DecodeObservationBatch(&r));
    log.push_back(std::move(batch));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after observation log");
  }
  return log;
}

Result<std::vector<ObservationBatch>> ObservationLogFromRecords(
    const std::vector<RawRecord>& records) {
  std::map<uint64_t, ObservationBatch> by_slot;
  for (const RawRecord& rec : records) {
    if (!std::isfinite(rec.speed_kmh)) {
      return Status::InvalidArgument("non-finite speed for road " +
                                     std::to_string(rec.road));
    }
    ObservationBatch& batch = by_slot[rec.slot];
    batch.slot = rec.slot;
    batch.observations.push_back(SeedSpeed{rec.road, rec.speed_kmh});
  }
  std::vector<ObservationBatch> log;
  log.reserve(by_slot.size());
  for (auto& [slot, batch] : by_slot) {
    log.push_back(std::move(batch));
  }
  return log;
}

std::vector<RawRecord> RecordsFromObservationLog(
    const std::vector<ObservationBatch>& log) {
  std::vector<RawRecord> records;
  for (const ObservationBatch& batch : log) {
    for (const SeedSpeed& s : batch.observations) {
      records.push_back(RawRecord{s.road, batch.slot, s.speed_kmh});
    }
  }
  return records;
}

}  // namespace trendspeed
