// CSV serialization of networks, speed fields, and raw speed records —
// the interchange format for feeding real data into the library (and the
// data_pipeline example).

#ifndef TRENDSPEED_IO_SERIALIZE_H_
#define TRENDSPEED_IO_SERIALIZE_H_

#include <string>

#include "probe/history.h"
#include "roadnet/road_network.h"
#include "traffic/simulator.h"
#include "util/csv.h"
#include "util/status.h"

namespace trendspeed {

/// Network <-> two CSV tables.
/// nodes: id,x,y        roads: id,from,to,class,free_flow_kmh
CsvTable NetworkNodesToCsv(const RoadNetwork& net);
CsvTable NetworkRoadsToCsv(const RoadNetwork& net);
Result<RoadNetwork> NetworkFromCsv(const CsvTable& nodes,
                                   const CsvTable& roads);

/// Speed field -> long-form CSV: slot,road,speed_kmh.
CsvTable SpeedFieldToCsv(const SpeedField& field);
/// Rebuilds a dense field. The table must cover every (slot, road) cell for
/// slots 0..max_slot exactly once; gaps, duplicate rows, and non-finite
/// speeds are rejected with InvalidArgument (no silent zero-fill).
Result<SpeedField> SpeedFieldFromCsv(const CsvTable& table,
                                     size_t num_roads, uint32_t slots_per_day);

/// Raw speed records -> CSV (road,slot,speed_kmh) and back into a builder.
struct RawRecord {
  RoadId road;
  uint64_t slot;
  double speed_kmh;
};
CsvTable RecordsToCsv(const std::vector<RawRecord>& records);
Result<std::vector<RawRecord>> RecordsFromCsv(const CsvTable& table);

/// Convenience: rebuilds a HistoricalDb from raw records.
Result<HistoricalDb> HistoryFromRecords(const std::vector<RawRecord>& records,
                                        size_t num_roads, uint64_t num_slots,
                                        uint32_t slots_per_day);

}  // namespace trendspeed

#endif  // TRENDSPEED_IO_SERIALIZE_H_
