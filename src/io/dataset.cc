#include "io/dataset.h"

#include <utility>

namespace trendspeed {

Result<Dataset> BuildDataset(std::string name, RoadNetwork net,
                             const DatasetOptions& opts) {
  if (opts.history_days == 0 || opts.test_days == 0) {
    return Status::InvalidArgument("history_days and test_days must be >= 1");
  }
  Dataset ds;
  ds.name = std::move(name);
  ds.net = std::move(net);
  ds.history_days = opts.history_days;
  ds.test_days = opts.test_days;
  TS_ASSIGN_OR_RETURN(
      ds.truth, GenerateSpeedField(ds.net, opts.traffic,
                                   opts.history_days + opts.test_days));
  // History sees only the first history_days of truth.
  SpeedField history_field;
  history_field.slots_per_day = ds.truth.slots_per_day;
  uint64_t history_slots =
      static_cast<uint64_t>(opts.history_days) * ds.truth.slots_per_day;
  history_field.speeds.assign(ds.truth.speeds.begin(),
                              ds.truth.speeds.begin() + history_slots);
  if (opts.use_probe_fleet) {
    TS_ASSIGN_OR_RETURN(ds.history, CollectProbeHistory(ds.net, history_field,
                                                        opts.fleet));
  } else {
    TS_ASSIGN_OR_RETURN(
        ds.history,
        CollectIdealizedHistory(ds.net, history_field, opts.idealized_coverage,
                                opts.idealized_noise_kmh, opts.seed));
  }
  return ds;
}

Result<Dataset> BuildCityA(const DatasetOptions& opts) {
  RingRadialOptions ring;
  ring.num_rings = 6;
  ring.num_spokes = 16;
  ring.highway_rings = 2;
  ring.seed = opts.seed;
  TS_ASSIGN_OR_RETURN(RoadNetwork net, MakeRingRadialNetwork(ring));
  DatasetOptions local = opts;
  // CityA congests harder (denser incidents, stronger disturbances).
  local.traffic.incidents.rate_per_slot = 0.05;
  local.traffic.disturbance.shock_sigma = 0.18;
  local.traffic.seed = opts.seed + 1;
  return BuildDataset("CityA", std::move(net), local);
}

Result<Dataset> BuildCityB(const DatasetOptions& opts) {
  GridNetworkOptions grid;
  grid.rows = 11;
  grid.cols = 11;
  grid.arterial_every = 5;
  grid.dropout = 0.08;
  grid.seed = opts.seed;
  TS_ASSIGN_OR_RETURN(RoadNetwork net, MakeGridNetwork(grid));
  DatasetOptions local = opts;
  local.traffic.incidents.rate_per_slot = 0.03;
  local.traffic.disturbance.shock_sigma = 0.14;
  local.traffic.seed = opts.seed + 2;
  return BuildDataset("CityB", std::move(net), local);
}

Result<Dataset> BuildTinyCity(const DatasetOptions& opts) {
  GridNetworkOptions grid;
  grid.rows = 5;
  grid.cols = 5;
  grid.arterial_every = 2;
  grid.seed = opts.seed;
  TS_ASSIGN_OR_RETURN(RoadNetwork net, MakeGridNetwork(grid));
  return BuildDataset("TinyCity", std::move(net), opts);
}

Result<Dataset> BuildTinyCity() {
  DatasetOptions opts;
  opts.history_days = 10;
  opts.test_days = 1;
  // The idealized collector keeps test suites fast; the probe-fleet path is
  // covered by its own tests.
  opts.use_probe_fleet = false;
  return BuildTinyCity(opts);
}

}  // namespace trendspeed
