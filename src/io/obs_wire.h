// Compact binary observation wire format — the one encoding shared by the
// ingest bench, file replays, and future network front-ends.
//
// CSV (io/serialize.h) is the human-facing interchange format, but a
// metropolitan observation firehose is machine-to-machine: fixed-width
// little-endian records, no parsing, no per-row allocation.
//
// Layout (all little-endian, via util/binary_io.h):
//
//   batch  :=  "TSOB" u32 version(=1)  u64 slot  u64 count
//              count * { u32 road  f32 speed_kmh }
//   log    :=  "TSOL" u32 version(=1)  u64 batch_count  batch_count * batch
//
// 8 bytes per observation. Speeds are quantized to f32 on encode (half a
// millimetre per hour of error at city speeds — far below sensor noise);
// encode(decode(bytes)) is byte-exact. Decoders are strict: bad tags,
// truncation, non-finite speeds, and trailing garbage all fail with Status
// instead of yielding garbage observations — validation against a specific
// road network (range checks) stays the serving session's job.
//
// Round-trip with the CSV loaders: ObservationLogFromRecords groups the
// RawRecords that RecordsFromCsv yields into ascending per-slot batches,
// and RecordsFromObservationLog flattens back, so CSV archives and wire
// streams interconvert (tests/obs_wire_test.cc).

#ifndef TRENDSPEED_IO_OBS_WIRE_H_
#define TRENDSPEED_IO_OBS_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/serialize.h"
#include "speed/propagation.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace trendspeed {

/// One slot's worth of observations, the unit of ingest admission.
struct ObservationBatch {
  uint64_t slot = 0;
  std::vector<SeedSpeed> observations;
};

inline constexpr uint32_t kObsWireVersion = 1;

/// Appends one batch to `w` (for streaming writers building logs).
void AppendObservationBatch(const ObservationBatch& batch, BinaryWriter* w);

std::string EncodeObservationBatch(const ObservationBatch& batch);
/// Reads one batch at the reader's cursor (for streaming readers).
Result<ObservationBatch> DecodeObservationBatch(BinaryReader* r);
/// Whole-buffer variant; trailing bytes are an error.
Result<ObservationBatch> DecodeObservationBatch(const std::string& bytes);

std::string EncodeObservationLog(const std::vector<ObservationBatch>& log);
Result<std::vector<ObservationBatch>> DecodeObservationLog(
    const std::string& bytes);

/// Groups raw records (the CSV loaders' row type) into per-slot batches,
/// ascending by slot; record order within a slot is preserved. Slots need
/// not be contiguous. Speeds must be finite.
Result<std::vector<ObservationBatch>> ObservationLogFromRecords(
    const std::vector<RawRecord>& records);
/// Flattens batches back into records (slot-major, preserving order).
std::vector<RawRecord> RecordsFromObservationLog(
    const std::vector<ObservationBatch>& log);

}  // namespace trendspeed

#endif  // TRENDSPEED_IO_OBS_WIRE_H_
