// Framed binary transport for served speed snapshots — the read-side twin
// of the observation wire format (io/obs_wire.h).
//
// The seqlock SpeedSnapshotPublisher (core/snapshot.h) gives in-process
// readers a non-blocking view of the served field; a *product process* on
// the far side of a socket or shared-memory ring needs the same view as
// bytes. One frame carries one internally consistent snapshot, so a
// transport can ship every publish (or just the latest) and the remote
// product layer folds/routes exactly as an in-process reader would.
//
// Layout (all little-endian, via util/binary_io.h):
//
//   snapshot := "TSSN" u32 version(=1)
//               u64 slot  u64 snapshot_version  u32 stale_slots
//               f64 mean_speed_kmh  u64 num_roads
//               num_roads * { f32 speed_kmh  f32 deviation }
//   log      := "TSSL" u32 version(=1)  u64 count  count * snapshot
//
// 8 bytes per road. Speeds and deviations are quantized to f32 on encode
// (the same contract as the observation wire — far below estimator noise);
// `stale` is derived from stale_slots on decode, never encoded separately,
// so a frame cannot carry the contradictory (stale=false, stale_slots>0).
// Decoders are strict: bad tags, truncation, absurd road counts, non-finite
// values, and trailing garbage all fail with Status instead of yielding a
// garbage speed field (tests/snapshot_wire_test.cc).

#ifndef TRENDSPEED_IO_SNAPSHOT_WIRE_H_
#define TRENDSPEED_IO_SNAPSHOT_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

// Struct-only dependency: the wire format consumes the SpeedSnapshot POD
// declared in core/snapshot.h; no SpeedSnapshotPublisher symbol is
// referenced, so ts_io stays below ts_core in the link graph.
#include "core/snapshot.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace trendspeed {

inline constexpr uint32_t kSnapshotWireVersion = 1;

/// Appends one snapshot frame to `w` (for streaming writers).
void AppendSpeedSnapshot(const SpeedSnapshot& snap, BinaryWriter* w);

std::string EncodeSpeedSnapshot(const SpeedSnapshot& snap);
/// Reads one frame at the reader's cursor (for streaming readers draining
/// a socket/ring buffer).
Result<SpeedSnapshot> DecodeSpeedSnapshot(BinaryReader* r);
/// Whole-buffer variant; trailing bytes are an error.
Result<SpeedSnapshot> DecodeSpeedSnapshot(const std::string& bytes);

std::string EncodeSnapshotLog(const std::vector<SpeedSnapshot>& log);
Result<std::vector<SpeedSnapshot>> DecodeSnapshotLog(const std::string& bytes);

}  // namespace trendspeed

#endif  // TRENDSPEED_IO_SNAPSHOT_WIRE_H_
