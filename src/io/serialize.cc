#include "io/serialize.h"

#include <charconv>
#include <cmath>
#include <limits>

namespace trendspeed {

namespace {

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

Result<double> ParseDouble(const std::string& s) {
  try {
    size_t pos = 0;
    double v = std::stod(s, &pos);
    if (pos != s.size()) {
      return Status::InvalidArgument("trailing characters in number: " + s);
    }
    return v;
  } catch (const std::exception&) {
    return Status::InvalidArgument("not a number: " + s);
  }
}

Result<uint64_t> ParseU64(const std::string& s) {
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an unsigned integer: " + s);
  }
  return v;
}

Result<RoadClass> ParseClass(const std::string& s) {
  if (s == "highway") return RoadClass::kHighway;
  if (s == "arterial") return RoadClass::kArterial;
  if (s == "local") return RoadClass::kLocal;
  return Status::InvalidArgument("unknown road class: " + s);
}

}  // namespace

CsvTable NetworkNodesToCsv(const RoadNetwork& net) {
  CsvTable t;
  t.header = {"id", "x", "y"};
  for (NodeId i = 0; i < net.num_nodes(); ++i) {
    const Node& n = net.node(i);
    t.rows.push_back({std::to_string(i), Fmt(n.x), Fmt(n.y)});
  }
  return t;
}

CsvTable NetworkRoadsToCsv(const RoadNetwork& net) {
  CsvTable t;
  t.header = {"id", "from", "to", "class", "free_flow_kmh"};
  for (RoadId i = 0; i < net.num_roads(); ++i) {
    const Road& r = net.road(i);
    t.rows.push_back({std::to_string(i), std::to_string(r.from),
                      std::to_string(r.to), RoadClassName(r.road_class),
                      Fmt(r.free_flow_kmh)});
  }
  return t;
}

Result<RoadNetwork> NetworkFromCsv(const CsvTable& nodes,
                                   const CsvTable& roads) {
  TS_ASSIGN_OR_RETURN(size_t nx, nodes.ColumnIndex("x"));
  TS_ASSIGN_OR_RETURN(size_t ny, nodes.ColumnIndex("y"));
  TS_ASSIGN_OR_RETURN(size_t rf, roads.ColumnIndex("from"));
  TS_ASSIGN_OR_RETURN(size_t rt, roads.ColumnIndex("to"));
  TS_ASSIGN_OR_RETURN(size_t rc, roads.ColumnIndex("class"));
  TS_ASSIGN_OR_RETURN(size_t rs, roads.ColumnIndex("free_flow_kmh"));
  RoadNetwork::Builder b;
  for (const auto& row : nodes.rows) {
    TS_ASSIGN_OR_RETURN(double x, ParseDouble(row[nx]));
    TS_ASSIGN_OR_RETURN(double y, ParseDouble(row[ny]));
    b.AddNode(x, y);
  }
  for (const auto& row : roads.rows) {
    TS_ASSIGN_OR_RETURN(uint64_t from, ParseU64(row[rf]));
    TS_ASSIGN_OR_RETURN(uint64_t to, ParseU64(row[rt]));
    if (from >= b.num_nodes() || to >= b.num_nodes()) {
      return Status::InvalidArgument("road references missing node");
    }
    TS_ASSIGN_OR_RETURN(RoadClass cls, ParseClass(row[rc]));
    TS_ASSIGN_OR_RETURN(double speed, ParseDouble(row[rs]));
    b.AddRoad(static_cast<NodeId>(from), static_cast<NodeId>(to), cls, speed);
  }
  return b.Finish();
}

CsvTable SpeedFieldToCsv(const SpeedField& field) {
  CsvTable t;
  t.header = {"slot", "road", "speed_kmh"};
  for (uint64_t slot = 0; slot < field.num_slots(); ++slot) {
    for (RoadId road = 0; road < field.num_roads(); ++road) {
      t.rows.push_back({std::to_string(slot), std::to_string(road),
                        Fmt(field.at(slot, road))});
    }
  }
  return t;
}

Result<SpeedField> SpeedFieldFromCsv(const CsvTable& table, size_t num_roads,
                                     uint32_t slots_per_day) {
  TS_ASSIGN_OR_RETURN(size_t cs, table.ColumnIndex("slot"));
  TS_ASSIGN_OR_RETURN(size_t cr, table.ColumnIndex("road"));
  TS_ASSIGN_OR_RETURN(size_t cv, table.ColumnIndex("speed_kmh"));
  if (table.rows.empty()) {
    return Status::InvalidArgument("speed field table has no rows");
  }
  uint64_t max_slot = 0;
  for (const auto& row : table.rows) {
    TS_ASSIGN_OR_RETURN(uint64_t slot, ParseU64(row[cs]));
    max_slot = std::max(max_slot, slot);
  }
  // NaN marks not-yet-assigned cells so gaps and duplicate rows are
  // detectable; a silent 0.0 fill would later be rejected downstream (e.g.
  // HistoryFromRecords requires positive speeds) or, worse, read as a
  // genuinely stopped road.
  constexpr double kUnassigned = std::numeric_limits<double>::quiet_NaN();
  SpeedField field;
  field.slots_per_day = slots_per_day;
  field.speeds.assign(max_slot + 1, std::vector<double>(num_roads, kUnassigned));
  for (const auto& row : table.rows) {
    TS_ASSIGN_OR_RETURN(uint64_t slot, ParseU64(row[cs]));
    TS_ASSIGN_OR_RETURN(uint64_t road, ParseU64(row[cr]));
    if (road >= num_roads) {
      return Status::InvalidArgument("road id out of range");
    }
    TS_ASSIGN_OR_RETURN(double v, ParseDouble(row[cv]));
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("speed must be finite at slot " +
                                     std::to_string(slot) + ", road " +
                                     std::to_string(road));
    }
    if (!std::isnan(field.speeds[slot][road])) {
      return Status::InvalidArgument("duplicate (slot, road) row: slot " +
                                     std::to_string(slot) + ", road " +
                                     std::to_string(road));
    }
    field.speeds[slot][road] = v;
  }
  for (uint64_t slot = 0; slot <= max_slot; ++slot) {
    for (uint64_t road = 0; road < num_roads; ++road) {
      if (std::isnan(field.speeds[slot][road])) {
        return Status::InvalidArgument("missing (slot, road) cell: slot " +
                                       std::to_string(slot) + ", road " +
                                       std::to_string(road));
      }
    }
  }
  return field;
}

CsvTable RecordsToCsv(const std::vector<RawRecord>& records) {
  CsvTable t;
  t.header = {"road", "slot", "speed_kmh"};
  for (const RawRecord& r : records) {
    t.rows.push_back(
        {std::to_string(r.road), std::to_string(r.slot), Fmt(r.speed_kmh)});
  }
  return t;
}

Result<std::vector<RawRecord>> RecordsFromCsv(const CsvTable& table) {
  TS_ASSIGN_OR_RETURN(size_t cr, table.ColumnIndex("road"));
  TS_ASSIGN_OR_RETURN(size_t cs, table.ColumnIndex("slot"));
  TS_ASSIGN_OR_RETURN(size_t cv, table.ColumnIndex("speed_kmh"));
  std::vector<RawRecord> out;
  out.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    RawRecord rec;
    TS_ASSIGN_OR_RETURN(uint64_t road, ParseU64(row[cr]));
    TS_ASSIGN_OR_RETURN(rec.slot, ParseU64(row[cs]));
    TS_ASSIGN_OR_RETURN(rec.speed_kmh, ParseDouble(row[cv]));
    rec.road = static_cast<RoadId>(road);
    out.push_back(rec);
  }
  return out;
}

Result<HistoricalDb> HistoryFromRecords(const std::vector<RawRecord>& records,
                                        size_t num_roads, uint64_t num_slots,
                                        uint32_t slots_per_day) {
  HistoricalDb::Builder builder(num_roads, num_slots, slots_per_day);
  for (const RawRecord& r : records) {
    if (r.road >= num_roads || r.slot >= num_slots) {
      return Status::InvalidArgument("record out of range");
    }
    if (r.speed_kmh <= 0.0) {
      return Status::InvalidArgument("record speed must be positive");
    }
    builder.Add(r.road, r.slot, r.speed_kmh);
  }
  return builder.Finish();
}

}  // namespace trendspeed
